//! The memory-compaction planner (paper §III-D).
//!
//! The search follows the paper's approximation:
//!
//! 1. **Live-interval analysis** (via the [`Profile`]) yields per-class
//!    sizes, intervals and layer times.
//! 2. **Initial assignment**: GPU-CPU swap goes to tensors with extremely
//!    long live intervals (weight stashes, optimizer states);
//!    recomputation goes to activations whose re-execution latency beats
//!    the exposed GPU-CPU swap cost; more GPU-CPU swap fills the gap to
//!    the memory target.
//! 3. **D2D coverage + iterative refinement**: leftover overflow and the
//!    assignments imposing the most overhead are re-tried as D2D swaps
//!    while spare peer memory lasts; refinement candidates are verified by
//!    an *emulator* run (one simulated window) and kept only when they
//!    visibly improve training time.

use crate::cache::{CancelToken, PlanCache};
use crate::mapping::{MappingSearch, SpareAssignment};
use crate::profiler::{Profile, TensorClass};
use mpress_analyze::{BoundsAnalyzer, BoundsVerdict, PlanVerifier};
use mpress_compaction::{
    CostModel, HostTier, InstrumentationPlan, MemoryDirective, StripePlan, Technique,
};
use mpress_hw::{Bytes, DeviceId, Machine, Secs};
use mpress_pipeline::{LoweredJob, PipelineJob};
use mpress_sim::{
    ArenaPool, DeltaOutcome, DeviceMap, OomEvent, PoolKind, RunBase, SimArena, SimError,
    SimOutcome, SimReport, Simulator,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which techniques the planner may use. Disabling subsets yields the
/// paper's baselines (recomputation-only, GPU-CPU-swap-only, D2D-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizationSet {
    /// Allow recomputation.
    pub recompute: bool,
    /// Allow GPU-CPU (PCIe) swap.
    pub host_swap: bool,
    /// Allow D2D (NVLink) swap.
    pub d2d: bool,
}

impl OptimizationSet {
    /// Everything on — full MPress.
    pub fn all() -> Self {
        OptimizationSet {
            recompute: true,
            host_swap: true,
            d2d: true,
        }
    }

    /// Nothing on — the unmodified host system.
    pub fn none() -> Self {
        OptimizationSet {
            recompute: false,
            host_swap: false,
            d2d: false,
        }
    }

    /// The recomputation baseline of Figs. 7-8.
    pub fn recompute_only() -> Self {
        OptimizationSet {
            recompute: true,
            host_swap: false,
            d2d: false,
        }
    }

    /// The GPU-CPU swap baseline of Fig. 7.
    pub fn host_swap_only() -> Self {
        OptimizationSet {
            recompute: false,
            host_swap: true,
            d2d: false,
        }
    }

    /// The stand-alone D2D variant of Fig. 7 ("MPress (D2D)").
    pub fn d2d_only() -> Self {
        OptimizationSet {
            recompute: false,
            host_swap: false,
            d2d: true,
        }
    }
}

/// Planner tunables.
///
/// Marked `#[non_exhaustive]`: start from [`PlannerConfig::default`] and
/// override fields so new tunables can be added without breaking
/// downstream crates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PlannerConfig {
    /// Which techniques may be used.
    pub optimizations: OptimizationSet,
    /// Fraction of GPU memory reserved for workspace/fragmentation.
    pub headroom: f64,
    /// Maximum emulator-verified refinement steps.
    pub refine_iters: usize,
    /// Per-peer data striping (Fig. 9 ablation: off sends whole tensors to
    /// the single widest donor).
    pub striping: bool,
    /// Device-mapping search (Fig. 9 ablation: off keeps the identity
    /// map).
    pub mapping_search: bool,
    /// Naive baseline behavior: swap *every* eligible tensor of an
    /// overflowing stage instead of just enough to fit (how vDNN-style
    /// GPU-CPU swap systems behave — the paper's Fig. 7 baseline).
    pub exhaustive_swap: bool,
    /// Skip full emulation for refinement candidates whose analytic
    /// best-case makespan already loses to the incumbent (see
    /// [`SimArena::makespan_lower_bound`]). The default honors the
    /// [`mpress_obs::ENV_PREFILTER`] escape hatch (`MPRESS_PREFILTER=0`
    /// disables); the chosen plan is identical either way — only
    /// `emulator_runs` changes.
    pub prefilter: bool,
    /// Run the static plan verifier (`mpress-analyze`) on every
    /// candidate before emulating it, rejecting structurally invalid
    /// plans without a simulator window. Planner-emitted candidates are
    /// always structurally valid, so the hook never changes the chosen
    /// plan — it guards externally supplied plans and counts rejections
    /// in [`SearchStats::verifier_rejections`]. The default honors the
    /// [`mpress_obs::ENV_VERIFY`] escape hatch (`MPRESS_VERIFY=0`
    /// disables).
    pub verify: bool,
    /// Incremental re-emulation: capture the refinement incumbent's run
    /// once (`Simulator::run_in_captured`) and emulate each candidate
    /// as a *delta* against it — restore the last window checkpoint
    /// provably before any divergence and replay only the suffix (see
    /// `mpress_sim::delta`). Byte-identical to from-scratch emulation,
    /// so the chosen plan never changes; only wall-clock and the
    /// [`SearchStats::delta_replays`] family of counters do. The
    /// default honors the [`mpress_obs::ENV_DELTA`] escape hatch
    /// (`MPRESS_DELTA=0` disables).
    pub delta: bool,
    /// Certified-bounds gate (`mpress_analyze::bounds`): before
    /// emulating a refinement candidate against a non-OOM incumbent,
    /// reject candidates whose residency **lower** bound already
    /// certifies an OOM (MP013 — the emulator could only confirm a loss)
    /// and candidates whose certified makespan lower bound cannot even
    /// tie the incumbent; a certified-**fit** verdict additionally lets
    /// the verifier hook skip its redundant residency re-checks
    /// (MP007/MP008). Pruning is sound — only candidates the metric
    /// could never pick are dropped — so the chosen plan is byte-
    /// identical either way; only [`SearchStats::bounds_pruned`] and
    /// [`SearchStats::bounds_certified_fit`] change. Supersedes the
    /// [`PlannerConfig::prefilter`] lower-bound check while on. The
    /// default honors the [`mpress_obs::ENV_BOUNDS`] escape hatch
    /// (`MPRESS_BOUNDS=0` disables).
    pub bounds: bool,
    /// Bound-and-abort emulation: refinement candidates run against a
    /// makespan bound of `incumbent * 1.001` (the acceptance slack),
    /// and the engine aborts the window the moment its simulated clock
    /// proves the candidate cannot even tie
    /// ([`SimOutcome::BoundExceeded`](mpress_sim::SimOutcome)). Sound
    /// by [`metric_better`]'s rules — an aborted candidate had already
    /// lost — so the chosen plan is byte-identical either way; only
    /// wall-clock and [`SearchStats::bound_aborts`] change. Composes
    /// with the certified-bounds gate: cheap certified prunes fire
    /// before emulation, expensive losers die early inside it. The
    /// default honors the [`mpress_obs::ENV_BOUND_ABORT`] escape hatch
    /// (`MPRESS_BOUND_ABORT=0` disables).
    pub bound_abort: bool,
    /// Widened refinement grid: every victim additionally tries
    /// dropping its directive outright and the opposite host tier,
    /// roughly doubling the candidate frontier. Unlike the gates above
    /// this **steers the search** (it joins the plan digest): wider
    /// grids explore assignments the default walk never visits. Used
    /// by the `exp_bench_search` scaling grid; off by default.
    pub explore: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            optimizations: OptimizationSet::all(),
            headroom: 0.04,
            refine_iters: 48,
            striping: true,
            mapping_search: true,
            exhaustive_swap: false,
            prefilter: prefilter_default(),
            verify: verify_default(),
            delta: delta_default(),
            bounds: bounds_default(),
            bound_abort: bound_abort_default(),
            explore: false,
        }
    }
}

/// Chainable setters, mirroring [`SimConfig`](mpress_sim::SimConfig):
/// start from `PlannerConfig::default()` and override fields in place.
/// (The fields stay `pub`, so struct-update assignment keeps working.)
impl PlannerConfig {
    /// Sets the allowed techniques.
    pub fn optimizations(mut self, opts: OptimizationSet) -> Self {
        self.optimizations = opts;
        self
    }

    /// Sets the workspace headroom fraction.
    pub fn headroom(mut self, headroom: f64) -> Self {
        self.headroom = headroom;
        self
    }

    /// Caps emulator-verified refinement rounds.
    pub fn refine_iters(mut self, iters: usize) -> Self {
        self.refine_iters = iters;
        self
    }

    /// Toggles D2D data striping (Fig. 9 ablation).
    pub fn striping(mut self, on: bool) -> Self {
        self.striping = on;
        self
    }

    /// Toggles the device-mapping search (Fig. 9 ablation).
    pub fn mapping_search(mut self, on: bool) -> Self {
        self.mapping_search = on;
        self
    }

    /// Toggles naive exhaustive-swap baseline behavior.
    pub fn exhaustive_swap(mut self, on: bool) -> Self {
        self.exhaustive_swap = on;
        self
    }

    /// Toggles the analytic lower-bound pre-filter.
    pub fn prefilter(mut self, on: bool) -> Self {
        self.prefilter = on;
        self
    }

    /// Toggles the static plan verifier hook.
    pub fn verify(mut self, on: bool) -> Self {
        self.verify = on;
        self
    }

    /// Toggles incremental (delta) re-emulation.
    pub fn delta(mut self, on: bool) -> Self {
        self.delta = on;
        self
    }

    /// Toggles the certified-bounds gate.
    pub fn bounds(mut self, on: bool) -> Self {
        self.bounds = on;
        self
    }

    /// Toggles bound-and-abort emulation.
    pub fn bound_abort(mut self, on: bool) -> Self {
        self.bound_abort = on;
        self
    }

    /// Toggles the widened (exploratory) refinement grid.
    pub fn explore(mut self, on: bool) -> Self {
        self.explore = on;
        self
    }
}

/// Process-wide default for [`PlannerConfig::bounds`]: on, unless
/// `MPRESS_BOUNDS` is set to `0`, `false` or `off`. Read once and
/// cached, like the other [`mpress_obs`] switches.
fn bounds_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var(mpress_obs::ENV_BOUNDS).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Process-wide default for [`PlannerConfig::bound_abort`]: on, unless
/// `MPRESS_BOUND_ABORT` is set to `0`, `false` or `off`. Read once and
/// cached, like the other [`mpress_obs`] switches.
fn bound_abort_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var(mpress_obs::ENV_BOUND_ABORT).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Process-wide default for [`PlannerConfig::delta`]: on, unless
/// `MPRESS_DELTA` is set to `0`, `false` or `off`. Read once and
/// cached, like the other [`mpress_obs`] switches.
fn delta_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var(mpress_obs::ENV_DELTA).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Process-wide default for [`PlannerConfig::verify`]: on, unless
/// `MPRESS_VERIFY` is set to `0`, `false` or `off`. Read once and
/// cached, like [`prefilter_default`].
fn verify_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var(mpress_obs::ENV_VERIFY).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Process-wide default for [`PlannerConfig::prefilter`]: on, unless
/// `MPRESS_PREFILTER` is set to `0`, `false` or `off`. Read once and
/// cached, like the other [`mpress_obs`] switches.
fn prefilter_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var(mpress_obs::ENV_PREFILTER).as_deref(),
            Ok("0") | Ok("false") | Ok("off")
        )
    })
}

/// Counters describing one planner search: how much emulator work ran,
/// how much the memoization cache absorbed, and how parallel the search
/// was. Surfaced through `Insights`/CLI output so speedups are
/// observable, not just asserted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Simulator windows actually executed on behalf of `emulate()`.
    pub emulator_runs: usize,
    /// `emulate()` calls answered from the memoization cache.
    pub cache_hits: usize,
    /// Refinement candidates skipped by the analytic lower-bound
    /// pre-filter without running the emulator (see
    /// [`PlannerConfig::prefilter`]).
    pub prefilter_skips: usize,
    /// Candidates rejected by the static plan verifier before emulation
    /// (see [`PlannerConfig::verify`]). Zero on every planner-driven
    /// search: the planner only emits structurally valid plans.
    pub verifier_rejections: usize,
    /// Worker count the parallel sections resolved to.
    pub jobs: usize,
    /// Peak concurrently-busy workers observed in the process so far.
    pub peak_workers: usize,
    /// `emulate()` calls answered by the canonical (device-permutation
    /// invariant) cache view after an exact-key miss (see `canon_key`).
    pub cache_hits_canonical: usize,
    /// Emulator runs that restored a divergence checkpoint and replayed
    /// only a window suffix instead of simulating from scratch.
    pub delta_replays: usize,
    /// Windows actually re-simulated across delta-eligible emulations
    /// (fallbacks count their full window total).
    pub windows_replayed: usize,
    /// Total windows across delta-eligible emulations; together with
    /// [`SearchStats::windows_replayed`] this measures how much of the
    /// schedule the delta path stitched from the incumbent's run.
    pub windows_total: usize,
    /// Candidates the certified-bounds gate pruned without emulation:
    /// certified-OOM residency (MP013) or a certified makespan lower
    /// bound that cannot even tie the incumbent (see
    /// [`PlannerConfig::bounds`]).
    pub bounds_pruned: usize,
    /// Candidates whose residency upper bound certified a device-
    /// capacity fit, letting the verifier hook skip its residency
    /// re-checks (MP007/MP008).
    pub bounds_certified_fit: usize,
    /// Frontier tasks a pool worker claimed from another lane's deque
    /// (see [`mpress_par::Pool`]). Zero on a serial search.
    pub steals: usize,
    /// Candidate evaluations executed speculatively by pool workers
    /// ahead of adjudication (the adjudicator's own inline evaluations
    /// are not counted). Zero on a serial search.
    pub speculative_runs: usize,
    /// Speculative evaluations whose result was discarded: the frontier
    /// was invalidated by a commit before adjudication reached them, or
    /// the incumbent they raced against had already been replaced
    /// (stale-threshold re-evaluation). `speculative_runs -
    /// speculation_wasted` is the useful speculation.
    pub speculation_wasted: usize,
    /// Emulator windows aborted by the bound-and-abort gate: the
    /// simulated clock passed `incumbent * 1.001` mid-window, proving
    /// the candidate lost without finishing it (see
    /// [`PlannerConfig::bound_abort`]).
    pub bound_aborts: usize,
}

impl SearchStats {
    /// Total `emulate()` calls (cached + executed).
    pub fn emulate_calls(&self) -> usize {
        self.emulator_runs + self.cache_hits + self.cache_hits_canonical
    }

    /// Fraction of `emulate()` calls served from cache (exact or
    /// canonical).
    pub fn cache_hit_rate(&self) -> f64 {
        let calls = self.emulate_calls();
        if calls == 0 {
            0.0
        } else {
            (self.cache_hits + self.cache_hits_canonical) as f64 / calls as f64
        }
    }
}

/// The planner's output.
#[derive(Debug, Clone)]
pub struct MpressPlan {
    /// The stage→device permutation.
    pub device_map: DeviceMap,
    /// Per-tensor directives.
    pub instrumentation: InstrumentationPlan,
    /// Donor budgets the D2D assignment drew from.
    pub spare: SpareAssignment,
    /// Emulator-verified refinement rounds executed.
    pub refinement_rounds: usize,
    /// The profiling baseline (uninstrumented timings and peaks).
    pub baseline: SimReport,
    /// Emulator/cache/pool counters for this search.
    pub search: SearchStats,
    /// Candidates adjudicated per frontier commit window, in commit
    /// order (one trailing entry for candidates after the last commit,
    /// then the portfolio checks). Feasibility iterations are not
    /// included, so the sum is at most `refinement_rounds`.
    pub refine_candidates: Vec<usize>,
}

impl MpressPlan {
    /// Technique → bytes saved, as in the paper's Table IV.
    pub fn savings(&self, lowered: &LoweredJob) -> std::collections::HashMap<Technique, Bytes> {
        self.instrumentation.savings_by_technique(&lowered.graph)
    }

    /// Technique → stages touched, as in the paper's Table IV.
    pub fn stages(&self, lowered: &LoweredJob) -> std::collections::HashMap<Technique, Vec<usize>> {
        self.instrumentation.stages_by_technique(&lowered.graph)
    }
}

/// Per-class planning state.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Choice {
    None,
    Recompute {
        overhead: Secs,
    },
    HostSwap {
        overhead: Secs,
        tier: HostTier,
    },
    /// D2D choice; the stripe is built at emit time from reserved budget.
    D2d,
}

impl Choice {
    fn overhead(self) -> Secs {
        match self {
            Choice::None | Choice::D2d => 0.0,
            Choice::Recompute { overhead } | Choice::HostSwap { overhead, .. } => overhead,
        }
    }

    fn is_assigned(self) -> bool {
        self != Choice::None
    }
}

/// Memoizes emulator outcomes across the search.
///
/// Refinement repeatedly re-creates previously-seen plans (rejected
/// trials revert to the incumbent, portfolio variants re-derive the
/// same assignment), so whole simulator windows can be skipped. The
/// key is a canonical **structural** digest of the plan's simulator-
/// visible effects (see [`cache_key`]), interned to one `u64` — no
/// per-call allocation, and equivalent candidates reached via different
/// refinement paths collapse onto the same entry.
#[derive(Debug, Default)]
struct EmulationCache {
    entries: Mutex<HashMap<u64, Outcome>>,
    /// Device-permutation-invariant view of `entries`, keyed by
    /// [`canon_key`]. Exact lookups run first; a canonical hit is
    /// promoted into `entries` under the exact key.
    canon: Mutex<HashMap<u64, (Metric, Option<CanonOom>)>>,
    runs: AtomicUsize,
    hits: AtomicUsize,
    canon_hits: AtomicUsize,
    prefilter_skips: AtomicUsize,
    verifier_rejections: AtomicUsize,
    delta_replays: AtomicUsize,
    windows_replayed: AtomicUsize,
    windows_total: AtomicUsize,
    bounds_pruned: AtomicUsize,
    bounds_certified_fit: AtomicUsize,
    /// Memoized residency verdicts `(certified_oom, certified_fit)`
    /// keyed by the structural [`cache_key`]. Pruned candidates never
    /// reach the metric caches, so without this memo a rejected trial
    /// re-derived later in the search would re-pay the directive walk.
    bounds_memo: Mutex<HashMap<u64, (bool, bool)>>,
    /// Memoized analytic makespan lower bounds keyed by [`cache_key`],
    /// used to order the refinement frontier. Orthogonal to the pruning
    /// memo above: the frontier needs the bound for *every* candidate,
    /// including ones the gates never see.
    lb_memo: Mutex<HashMap<u64, Secs>>,
    bound_aborts: AtomicUsize,
    spec_runs: AtomicUsize,
    spec_wasted: AtomicUsize,
    steals: AtomicUsize,
}

/// What one emulator window reports back to the search.
type Outcome = (Metric, Option<OomEvent>);

/// A map-independent OOM record: the failing GPU is remembered as its
/// *stage*, so a canonical hit reached under a different device
/// permutation can reconstruct the [`OomEvent`] for the map actually in
/// use.
#[derive(Debug, Clone, Copy)]
struct CanonOom {
    pool: PoolKind,
    stage: Option<usize>,
    time: Secs,
    used: Bytes,
    capacity: Bytes,
}

impl EmulationCache {
    fn lookup(&self, key: u64) -> Option<Outcome> {
        let found = self.entries.lock().expect("cache lock").get(&key).copied();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Canonical-view lookup, reconstructing the OOM event for the
    /// caller's device map. Counts `canon_hits` and promotes the result
    /// into the exact map under `exact_key` so later repeats are exact
    /// hits.
    fn lookup_canon(&self, ckey: u64, exact_key: u64, device_map: &DeviceMap) -> Option<Outcome> {
        let found = self.canon.lock().expect("canon lock").get(&ckey).copied();
        let (metric, canon_oom) = found?;
        self.canon_hits.fetch_add(1, Ordering::Relaxed);
        let oom = canon_oom.map(|c| OomEvent {
            pool: c.pool,
            device: c.stage.map(|s| device_map.device_of(s)),
            time: c.time,
            used: c.used,
            capacity: c.capacity,
        });
        let outcome = (metric, oom);
        self.insert(exact_key, outcome);
        Some(outcome)
    }

    fn insert(&self, key: u64, outcome: Outcome) {
        self.entries
            .lock()
            .expect("cache lock")
            .insert(key, outcome);
    }

    /// Records an outcome under its canonical key. OOM devices are
    /// translated to stages through the *producing* map; an OOM on a
    /// GPU hosting no stage has no map-independent description and is
    /// simply not shared.
    fn insert_canon(&self, ckey: u64, outcome: Outcome, device_map: &DeviceMap) {
        let canon_oom = match outcome.1 {
            None => None,
            Some(e) => {
                let stage = match e.device {
                    None => None,
                    Some(d) => match device_map.stage_of(d) {
                        Some(s) => Some(s),
                        None => return,
                    },
                };
                Some(CanonOom {
                    pool: e.pool,
                    stage,
                    time: e.time,
                    used: e.used,
                    capacity: e.capacity,
                })
            }
        };
        self.canon
            .lock()
            .expect("canon lock")
            .entry(ckey)
            .or_insert((outcome.0, canon_oom));
    }
}

/// Minimal FNV-1a 64-bit fold (std-only; `DefaultHasher` is not
/// guaranteed stable across releases and cache behavior should be
/// reproducible build-to-build).
pub(crate) fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h;
    for byte in v.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis.
pub(crate) const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Canonical structural digest of one emulator input: the device map
/// plus, per tensor (in deterministic `BTreeMap` order), exactly the
/// directive properties the simulator consumes — technique, host tier,
/// and for D2D stripes the one-way transfer time and the per-chunk
/// `(target, bytes)` layout. Lane counts are deliberately **not**
/// hashed: the engine only reads them through `one_way_time()`, so two
/// stripes differing only in lanes (same timing, same placement) are
/// the same plan to the emulator and share a cache entry.
///
/// The digest is a 64-bit hash, so a collision is theoretically able to
/// return a wrong memoized metric; with the few hundred distinct plans
/// a search generates the probability is ~1e-15 per search, which we
/// accept for an allocation-free key (the property suite still pins
/// cached == uncached outcomes on real searches).
fn cache_key(plan: &InstrumentationPlan, device_map: &DeviceMap) -> u64 {
    let mut h = fnv(FNV_SEED, device_map.len() as u64);
    for stage in 0..device_map.len() {
        h = fnv(h, device_map.device_of(stage).0 as u64);
    }
    for (tensor, directive) in plan.iter() {
        h = fnv(h, tensor.index() as u64);
        match directive {
            MemoryDirective::Recompute => h = fnv(h, 0),
            MemoryDirective::SwapToHost(tier) => {
                h = fnv(h, 1);
                h = fnv(h, u64::from(*tier == HostTier::Nvme));
            }
            MemoryDirective::SwapD2d(stripe) => {
                h = fnv(h, 2);
                h = fnv(h, stripe.one_way_time().to_bits());
                h = fnv(h, stripe.chunks().len() as u64);
                for chunk in stripe.chunks() {
                    h = fnv(h, chunk.target.0 as u64);
                    h = fnv(h, chunk.bytes.as_u64());
                }
            }
        }
    }
    h
}

/// [`cache_key`] made invariant under consistent device relabeling:
/// every device id is replaced by its first-appearance rank (stage scan
/// first, then stripe chunk targets in plan order), so plans that are
/// equal up to a device permutation collide. GPUs are homogeneous and
/// every timing the simulator reads off a stripe is hashed explicitly
/// (`one_way_time`), so the emulator's visible inputs coincide for all
/// members of a canonical class; OOM events are re-expressed per-map by
/// [`EmulationCache::lookup_canon`]. Within one search the device map
/// is fixed, making the canonical key a bijection of the exact one —
/// the wins (counted in [`SearchStats::cache_hits_canonical`]) appear
/// across the mapping-search and portfolio variants, which revisit
/// equivalent plans under permuted maps.
fn canon_key(plan: &InstrumentationPlan, device_map: &DeviceMap) -> u64 {
    let mut ranks: HashMap<u64, u64> = HashMap::new();
    fn rank(ranks: &mut HashMap<u64, u64>, device: u64) -> u64 {
        let next = ranks.len() as u64;
        *ranks.entry(device).or_insert(next)
    }
    let mut h = fnv(FNV_SEED, device_map.len() as u64);
    for stage in 0..device_map.len() {
        let r = rank(&mut ranks, device_map.device_of(stage).0 as u64);
        h = fnv(h, r);
    }
    for (tensor, directive) in plan.iter() {
        h = fnv(h, tensor.index() as u64);
        match directive {
            MemoryDirective::Recompute => h = fnv(h, 0),
            MemoryDirective::SwapToHost(tier) => {
                h = fnv(h, 1);
                h = fnv(h, u64::from(*tier == HostTier::Nvme));
            }
            MemoryDirective::SwapD2d(stripe) => {
                h = fnv(h, 2);
                h = fnv(h, stripe.one_way_time().to_bits());
                h = fnv(h, stripe.chunks().len() as u64);
                for chunk in stripe.chunks() {
                    let r = rank(&mut ranks, chunk.target.0 as u64);
                    h = fnv(h, r);
                    h = fnv(h, chunk.bytes.as_u64());
                }
            }
        }
    }
    h
}

/// One emulator-verified replacement attempt for a refinement victim:
/// the full trial choice vector plus (for D2D re-routes) the donor
/// budgets the trial reserved from.
struct RefineTrial {
    choice: Vec<Choice>,
    budgets: Option<Vec<Vec<(DeviceId, u32, Bytes)>>>,
}

/// A refinement candidate on the adjudicator's priority frontier:
/// everything needed to adopt it on commit. The frontier key it sits
/// under — `(lb_bits, canon_key, exact_key, seq)` — orders candidates
/// by certified makespan lower bound first (most promising = lowest
/// bound), and the digest tie-breaks make the order a pure function of
/// the candidate set, never of evaluation timing.
struct FrontierEntry {
    victim: usize,
    choice: Vec<Choice>,
    budgets: Option<Vec<Vec<(DeviceId, u32, Bytes)>>>,
    plan: Arc<InstrumentationPlan>,
    key: u64,
}

/// State shared between the refinement adjudicator (lane 0) and the
/// speculative pool workers. Workers only ever *read* candidates and
/// *write* evaluation slots; every search decision is taken by the
/// adjudicator, in frontier order, so outcomes cannot depend on worker
/// timing.
struct SpecShared {
    /// Evaluable candidates by structural key. Cleared on every commit
    /// (queued evaluations of invalidated candidates become no-ops) and
    /// at search end (post-search deque drains stop doing work).
    jobs: Mutex<HashMap<u64, Arc<InstrumentationPlan>>>,
    /// Evaluation slots: claimed (in flight) or done. A slot is claimed
    /// exactly once, so no candidate is ever emulated twice
    /// concurrently.
    results: Mutex<HashMap<u64, SpecState>>,
    /// The incumbent metric and delta base speculative evaluations race
    /// against. Updated by the adjudicator on commit; a stale snapshot
    /// only makes a speculative verdict *inconclusive* (see
    /// [`SpecResult::Lost`]), never wrong.
    incumbent: Mutex<(Metric, Option<Arc<RunBase>>)>,
}

/// One evaluation slot in [`SpecShared::results`].
enum SpecState {
    Claimed,
    Done(SpecResult),
}

/// The verdict of one candidate evaluation. `Outcome`, `Rejected` and
/// `CertifiedLoss` are *conclusive*: they are pure functions of the
/// candidate (and for `CertifiedLoss` of the incumbent's OOM-freeness,
/// which never regresses), so the adjudicator can consume them no
/// matter which incumbent the evaluation raced against. `Lost` is
/// threshold-relative: it is conclusive only while the incumbent's
/// acceptance threshold has not *tightened* past the one the evaluation
/// saw (commits may raise the makespan by up to the 1.001x tiebreak
/// slack); a stale `Lost` is re-evaluated inline and the speculative
/// run counted as wasted.
#[derive(Clone)]
enum SpecResult {
    /// Full emulation completed. The OOM event is deliberately dropped:
    /// adjudication only compares [`Metric`]s (the feasibility loop,
    /// which does consume OOM events, runs before the frontier search).
    Outcome(Metric),
    /// Static verifier found a structural malformation.
    Rejected,
    /// Certified-OOM residency bound against a non-OOM incumbent.
    CertifiedLoss,
    /// Pruned by the certified lower bound or aborted past the makespan
    /// bound while `threshold` was the acceptance bar.
    Lost { threshold: Secs },
    /// The evaluation itself failed (cancellation, bad plan).
    Failed(SimError),
}

/// What one (possibly bounded) emulator window produced.
enum RunOut {
    Done(Outcome),
    /// The simulated clock passed the makespan bound; no usable metric.
    Aborted,
}

/// How one candidate fared against the gate chain, for callers that
/// need to distinguish *why* no outcome was produced (the speculative
/// search does; [`Planner::emulate_bounded`] flattens this to an
/// `Option`).
enum Gated {
    Outcome(Metric, Option<OomEvent>),
    /// Structural verifier rejection (only with an incumbent; without
    /// one the rejection is an error).
    Rejected,
    /// Certified-OOM residency verdict against a non-OOM incumbent.
    CertifiedLoss,
    /// Lower-bound prune or bound-and-abort: the candidate provably
    /// cannot beat the incumbent it was gated against.
    Lost,
}

/// Assigns compaction techniques to one job's tensor classes.
#[derive(Debug)]
pub struct Planner<'a> {
    machine: &'a Machine,
    job: &'a PipelineJob,
    lowered: &'a LoweredJob,
    config: PlannerConfig,
    cache: EmulationCache,
    /// Reusable simulation arenas, one checked out per concurrent
    /// emulator window — steady-state `emulate()` calls reuse the graph
    /// tables and task buffers instead of rebuilding them. A shared pool
    /// (see [`Planner::with_arena_pool`]) lets a long-running process
    /// amortize the tables across planner instances.
    arenas: ArenaPool,
    /// Process-global outcome sharing: `(cache handle, job scope)`.
    /// Probed after the local exact/canonical maps miss; see
    /// [`Planner::with_shared_cache`].
    shared: Option<(PlanCache, u64)>,
    /// Cancellation budget checked before every simulator window; see
    /// [`Planner::with_cancel`].
    cancel: Option<CancelToken>,
    /// Lazily built static plan verifier (see [`PlannerConfig::verify`]).
    /// The graph-side tables (lifetime sites, happens-before bitset)
    /// are shared by every candidate check, so they are built once.
    verifier: OnceLock<PlanVerifier<'a>>,
    /// Lazily built certified-bounds analyzer (see
    /// [`PlannerConfig::bounds`]); its per-stage residency tables are
    /// likewise shared by every candidate.
    bounds: OnceLock<BoundsAnalyzer<'a>>,
}

impl<'a> Planner<'a> {
    /// Creates a planner.
    pub fn new(
        machine: &'a Machine,
        job: &'a PipelineJob,
        lowered: &'a LoweredJob,
        config: PlannerConfig,
    ) -> Self {
        Planner {
            machine,
            job,
            lowered,
            config,
            cache: EmulationCache::default(),
            arenas: ArenaPool::new(),
            shared: None,
            cancel: None,
            verifier: OnceLock::new(),
            bounds: OnceLock::new(),
        }
    }

    /// Attaches a process-global [`PlanCache`] for emulation-outcome
    /// sharing, scoped by the job fingerprint `scope` (see
    /// [`Mpress::job_scope`](crate::Mpress::job_scope)): outcomes this
    /// planner computes become visible to other searches over the same
    /// job, and vice versa. Outcomes are a deterministic function of
    /// `(machine, graph, plan, device map)`, all covered by
    /// `(scope, cache_key)`, so sharing never changes a chosen plan —
    /// only which searches pay for the simulator windows.
    pub fn with_shared_cache(mut self, cache: PlanCache, scope: u64) -> Self {
        self.shared = Some((cache, scope));
        self
    }

    /// Attaches a cancellation budget: every simulator window charges
    /// the token first, and a tripped token aborts the search with
    /// [`SimError::Cancelled`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Replaces the private arena pool with a shared one, so emulator
    /// windows reuse prebuilt graph tables across planner instances.
    pub fn with_arena_pool(mut self, pool: ArenaPool) -> Self {
        self.arenas = pool;
        self
    }

    /// Emulator/cache/pool counters accumulated by this planner so far.
    pub fn search_stats(&self) -> SearchStats {
        SearchStats {
            emulator_runs: self.cache.runs.load(Ordering::Relaxed),
            cache_hits: self.cache.hits.load(Ordering::Relaxed),
            prefilter_skips: self.cache.prefilter_skips.load(Ordering::Relaxed),
            verifier_rejections: self.cache.verifier_rejections.load(Ordering::Relaxed),
            jobs: mpress_par::pool_width(),
            peak_workers: mpress_par::stats().peak_workers,
            cache_hits_canonical: self.cache.canon_hits.load(Ordering::Relaxed),
            delta_replays: self.cache.delta_replays.load(Ordering::Relaxed),
            windows_replayed: self.cache.windows_replayed.load(Ordering::Relaxed),
            windows_total: self.cache.windows_total.load(Ordering::Relaxed),
            bounds_pruned: self.cache.bounds_pruned.load(Ordering::Relaxed),
            bounds_certified_fit: self.cache.bounds_certified_fit.load(Ordering::Relaxed),
            steals: self.cache.steals.load(Ordering::Relaxed),
            speculative_runs: self.cache.spec_runs.load(Ordering::Relaxed),
            speculation_wasted: self.cache.spec_wasted.load(Ordering::Relaxed),
            bound_aborts: self.cache.bound_aborts.load(Ordering::Relaxed),
        }
    }

    /// Charges one simulator window against the cancellation budget.
    /// Without a token this is free and can never fail.
    fn charge_cancel(&self) -> Result<(), SimError> {
        match &self.cancel {
            Some(token) if !token.charge_run() => Err(SimError::Cancelled),
            _ => Ok(()),
        }
    }

    /// Checks an arena out of the pool (or makes a fresh one), runs `f`,
    /// and returns the arena for the next emulator window. Concurrent
    /// windows check out distinct arenas, so the pool's steady-state size
    /// is the worker count.
    fn with_arena<T>(&self, f: impl FnOnce(&mut SimArena) -> T) -> T {
        self.arenas.with(f)
    }

    /// Produces the memory-saving plan.
    ///
    /// An infeasible job (not enough savings available) still returns a
    /// best-effort plan; infeasibility surfaces as an OOM when simulating.
    ///
    /// When every technique is allowed, the planner builds a small
    /// *portfolio* — the full combined plan, a no-D2D variant, and a
    /// recompute-only variant — and keeps whichever the emulator favors,
    /// guaranteeing full MPress never loses to its own restricted
    /// baselines.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from profiling or emulator runs.
    pub fn plan(&self) -> Result<MpressPlan, SimError> {
        let profile = Profile::collect(self.machine, self.job, self.lowered)?;
        let opts = self.config.optimizations;
        let mut variants: Vec<OptimizationSet> = Vec::new();
        if opts.d2d && (opts.recompute || opts.host_swap) {
            variants.push(OptimizationSet { d2d: false, ..opts });
        }
        if opts.recompute && (opts.host_swap || opts.d2d) {
            // The recompute-only plan is the strongest antidote to over-
            // committed host swaps: giant statics often fit outright once
            // every activation is recomputed, and the initial assignment
            // only discovers that when host swap is off the table.
            variants.push(OptimizationSet {
                host_swap: false,
                d2d: false,
                ..opts
            });
        }
        let mut best = self.plan_with(opts, &profile)?;
        if variants.is_empty() {
            best.search = self.search_stats();
            return Ok(best);
        }
        let mut best_metric = self.emulate(&best.instrumentation, &best.device_map)?.0;
        // The portfolio variants are independent searches: plan and
        // emulate them concurrently, then fold the winners back in the
        // fixed variant order so the outcome matches the serial walk.
        // Pruning is against the *pre-fold* incumbent — conservative even
        // though the fold may improve it, because pruning against a worse
        // incumbent only prunes less.
        let fold_incumbent = best_metric;
        let alternatives: Vec<Result<(MpressPlan, Option<Metric>), SimError>> =
            mpress_par::par_map(&variants, |variant| {
                let alternative = self.plan_with(*variant, &profile)?;
                let alt_metric = self
                    .emulate_bounded(
                        &alternative.instrumentation,
                        &alternative.device_map,
                        Some(fold_incumbent),
                    )?
                    .map(|(m, _)| m);
                Ok((alternative, alt_metric))
            });
        for (variant, outcome) in variants.iter().zip(alternatives) {
            let (alternative, alt_metric) = outcome?;
            let Some(alt_metric) = alt_metric else {
                continue; // pruned: cannot beat the incumbent
            };
            if mpress_obs::verbosity().plan_debug {
                eprintln!(
                    "portfolio {variant:?}: oom={} makespan={:.4} vs best oom={} makespan={:.4}",
                    alt_metric.oom, alt_metric.makespan, best_metric.oom, best_metric.makespan
                );
            }
            if metric_better(alt_metric, best_metric) {
                best = alternative;
                best_metric = alt_metric;
            }
        }
        best.search = self.search_stats();
        Ok(best)
    }

    /// Plans with an explicit technique set against a shared profile.
    fn plan_with(&self, opts: OptimizationSet, profile: &Profile) -> Result<MpressPlan, SimError> {
        let cap = self.capacity_target();
        let n = self.lowered.graph.n_stages();
        let peaks = &profile.baseline.device_peak[..n];
        let overflow: Vec<Bytes> = peaks.iter().map(|&p| p.saturating_sub(cap)).collect();

        let cost = CostModel::new(self.machine.clone());
        let classes = &profile.classes;
        let mut choice: Vec<Choice> = vec![Choice::None; classes.len()];

        // --- Initial assignment (§III-D step 1) -------------------------------
        // The per-tensor cost model hides a swap behind its live interval,
        // but every host swap also occupies the stage's PCIe copy engine.
        // Steady-state 1F1B repeats one microbatch cycle per stage, so the
        // per-cycle copy demand must fit inside the cycle's compute time —
        // latency hiding needs slack, so utilization is kept near half.
        let m_count = self.job.microbatches() as f64;
        #[allow(clippy::needless_range_loop)]
        for stage in 0..n {
            if overflow[stage].is_zero() {
                continue;
            }
            let cycle = self.job.stage_forward_time(stage) + self.job.stage_backward_time(stage);
            let channel_budget = 0.5 * cycle;
            let mut candidates: Vec<(usize, Choice)> = classes
                .iter()
                .enumerate()
                .filter(|(_, c)| c.stage == stage)
                .filter_map(|(i, c)| self.best_static_choice(opts, &cost, c).map(|ch| (i, ch)))
                .collect();
            candidates.sort_by(|a, b| {
                a.1.overhead()
                    .partial_cmp(&b.1.overhead())
                    .expect("finite overheads")
                    .then(classes[b.0].peak_saving().cmp(&classes[a.0].peak_saving()))
            });
            let mut remaining = overflow[stage];
            let mut pcie_load = 0.0;
            for (i, mut ch) in candidates {
                if remaining.is_zero() && !self.config.exhaustive_swap {
                    break;
                }
                if let Choice::HostSwap { tier, .. } = ch {
                    let class = &classes[i];
                    // Activations round-trip once per microbatch; statics
                    // amortize their single round trip over the window.
                    let legs_per_cycle = class.instances.len() as f64 / m_count;
                    let extra =
                        legs_per_cycle * self.machine.pcie_transfer_time(class.bytes_per_instance);
                    if pcie_load + extra > channel_budget {
                        // The copy engine is saturated: fall back to
                        // recomputation when allowed, else accept the
                        // queued swap with its exposure made explicit.
                        if opts.recompute && class.recomputable() {
                            ch = Choice::Recompute {
                                overhead: cost.recompute(class.recompute_time).overhead,
                            };
                        } else {
                            ch = Choice::HostSwap {
                                overhead: extra.max(ch.overhead()),
                                tier,
                            };
                            pcie_load += extra;
                        }
                    } else {
                        pcie_load += extra;
                    }
                }
                remaining = remaining.saturating_sub(classes[i].peak_saving());
                choice[i] = ch;
            }
        }

        // --- Donor minting -----------------------------------------------------
        // D2D needs spare peer memory, and a stage sitting exactly at
        // capacity after compaction donates nothing. Long-lived statics
        // (optimizer states, weight stashes) swap to the host for free —
        // one hidden round trip per window — so when D2D is on the table,
        // offload them everywhere to mint donor space (the paper's
        // Table IV shows GPU-CPU swap spanning stages 0-7 for this
        // reason).
        let mut minted: Vec<usize> = Vec::new();
        if opts.d2d && opts.host_swap && overflow.iter().any(|o| !o.is_zero()) {
            for (i, class) in classes.iter().enumerate() {
                if choice[i].is_assigned() || !class.swappable || class.recomputable() {
                    continue;
                }
                if let Some(ch @ Choice::HostSwap { overhead, .. }) =
                    self.best_static_choice(opts, &cost, class)
                {
                    if overhead <= 1e-9 {
                        choice[i] = ch;
                        minted.push(i);
                    }
                }
            }
        }

        // --- Device mapping (§III-C) with post-compaction spare ---------------
        // Spare memory for D2D donation is what remains AFTER recompute and
        // host swap have done their work — at 15B+ every stage's raw peak
        // overflows, yet compacted late stages donate plenty (that is how
        // the paper's Table IV shows D2D at 20.4B).
        let projected: Vec<Bytes> = (0..n)
            .map(|stage| {
                let covered: Bytes = classes
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| c.stage == stage && choice[*i].is_assigned())
                    .map(|(_, c)| c.peak_saving())
                    .sum();
                peaks[stage].saturating_sub(covered)
            })
            .collect();
        let spare: Vec<Bytes> = projected
            .iter()
            .map(|&p| cap.scale(0.97).saturating_sub(p))
            .collect();
        let search = MappingSearch::new(self.machine);
        let (device_map, spare_assignment) = if opts.d2d && self.config.mapping_search {
            let (m, a, _) = search.search(&overflow, &spare);
            (m, a)
        } else {
            let m = DeviceMap::identity(n);
            let a = search.assign_spare(&m, &overflow, &spare);
            (m, a)
        };
        let mut budgets = spare_assignment.per_stage.clone();

        // --- D2D coverage of leftover overflow --------------------------------
        if opts.d2d {
            for stage in 0..n {
                let covered: Bytes = classes
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| c.stage == stage && choice[*i].is_assigned())
                    .map(|(_, c)| c.peak_saving())
                    .sum();
                let mut remaining = overflow[stage].saturating_sub(covered);
                if remaining.is_zero() {
                    continue;
                }
                let mut unassigned: Vec<usize> = classes
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| c.stage == stage && !choice[*i].is_assigned() && c.swappable)
                    .map(|(i, _)| i)
                    .collect();
                // Short-lived tensors first: D2D is the only technique
                // whose latency they can hide (§III-A).
                unassigned.sort_by(|&a, &b| {
                    classes[a]
                        .live_interval
                        .partial_cmp(&classes[b].live_interval)
                        .expect("finite intervals")
                });
                for i in unassigned {
                    if remaining.is_zero() {
                        break;
                    }
                    if reserve_budget(&classes[i], &mut budgets[stage]) {
                        choice[i] = Choice::D2d;
                        remaining = remaining.saturating_sub(classes[i].peak_saving());
                    }
                }
            }
        }

        // --- Emulator feasibility loop (paper Fig. 5 step 5) -------------------
        // Static estimates under-predict dynamic residency (swap-out lag,
        // in-flight copies), so the emulator arbitrates: while the window
        // still overflows, assign the next-cheapest class on the failing
        // stage and re-run. The paper's planner/rewriter/emulator loop
        // "runs throughout a series of iterations to converge".
        let mut rounds = 0;
        let any_technique = opts.recompute || opts.host_swap || opts.d2d;
        if any_technique {
            for _ in 0..64 {
                let plan = self.emit(classes, &choice, &budgets, &device_map)?;
                let (metric, oom) = self.emulate(&plan, &device_map)?;
                if !metric.oom {
                    break;
                }
                rounds += 1;
                let Some(stage) = oom
                    .and_then(|e| e.device)
                    .and_then(|d| device_map.stage_of(d))
                else {
                    break; // host pool exhausted — nothing to reassign
                };
                let mut fixed = false;
                // Cheapest remaining class on the failing stage first.
                let mut remaining_classes: Vec<usize> = classes
                    .iter()
                    .enumerate()
                    .filter(|(i, c)| c.stage == stage && !choice[*i].is_assigned())
                    .map(|(i, _)| i)
                    .collect();
                remaining_classes.sort_by(|&a, &b| {
                    let oa = self
                        .best_static_choice(opts, &cost, &classes[a])
                        .map_or(f64::INFINITY, |c| c.overhead());
                    let ob = self
                        .best_static_choice(opts, &cost, &classes[b])
                        .map_or(f64::INFINITY, |c| c.overhead());
                    oa.partial_cmp(&ob)
                        .expect("finite overheads")
                        .then(classes[b].peak_saving().cmp(&classes[a].peak_saving()))
                });
                for i in remaining_classes {
                    if opts.d2d && reserve_budget(&classes[i], &mut budgets[stage]) {
                        choice[i] = Choice::D2d;
                        fixed = true;
                        break;
                    }
                    if let Some(ch) = self.best_static_choice(opts, &cost, &classes[i]) {
                        choice[i] = ch;
                        fixed = true;
                        break;
                    }
                }
                if !fixed {
                    break; // genuinely infeasible with the allowed techniques
                }
            }
        }

        // --- Emulator-verified refinement (§III-D step 2) ----------------------
        let mut refine_candidates: Vec<usize> = Vec::new();
        if (opts.d2d || opts.recompute) && self.config.refine_iters > 0 {
            let mut best_plan = self.emit(classes, &choice, &budgets, &device_map)?;
            let (mut best_metric, _) = self.emulate(&best_plan, &device_map)?;
            // Delta base: one captured run of the incumbent lets every
            // candidate below replay only its divergent suffix. The
            // base is refreshed whenever the incumbent changes so diffs
            // stay single-choice; an OOM incumbent has no usable base.
            let mut delta_base: Option<Arc<RunBase>> = if self.config.delta && !best_metric.oom {
                self.capture_base(&best_plan, &device_map)?.map(Arc::new)
            } else {
                None
            };
            // Class-wide trials (every instance of a tensor class flips
            // at once) can pin the divergence bound so early that every
            // replay falls back — then each base capture is pure
            // overhead. After `DELTA_DRY_ROUNDS` consecutive commit
            // windows whose delta-eligible emulations all fell back,
            // stop capturing for the rest of this search. Capture
            // decisions only steer wall-clock (delta replay is byte-
            // identical), so reading the racy counter here cannot
            // change the chosen plan at any worker count.
            let mut dry_commits = 0usize;
            let mut replays_mark = self.cache.delta_replays.load(Ordering::Relaxed);
            // Every assigned class is a replacement candidate: estimated
            // overheads order them, but queuing delays the estimates miss
            // are caught by the emulator, so zero-estimate classes are
            // still worth trying (largest savings first).
            let mut victims: Vec<usize> = (0..classes.len())
                .filter(|&i| choice[i].is_assigned() && choice[i] != Choice::D2d)
                .collect();
            victims.sort_by(|&a, &b| {
                choice[b]
                    .overhead()
                    .partial_cmp(&choice[a].overhead())
                    .expect("finite overheads")
                    .then(classes[b].peak_saving().cmp(&classes[a].peak_saving()))
            });
            let victims: Vec<usize> = victims.into_iter().take(self.config.refine_iters).collect();
            // --- Speculative best-first frontier search -------------------
            // The adjudicator (this thread, lane 0) owns a priority
            // frontier of candidates ordered by certified makespan lower
            // bound; persistent pool workers speculatively evaluate
            // frontier candidates from per-lane deques (stealing when
            // their own runs dry) against an atomic incumbent snapshot.
            // Candidates are *adjudicated* strictly in frontier order
            // regardless of completion order, and inconclusive
            // speculative verdicts are re-evaluated inline, so the
            // chosen plan is byte-identical across any worker count. A
            // commit invalidates the whole frontier (its candidates were
            // built on the replaced incumbent's choice vector) and
            // regenerates trials for the unconsumed victims.
            let mut consumed: Vec<bool> = vec![false; classes.len()];
            let shared = SpecShared {
                jobs: Mutex::new(HashMap::new()),
                results: Mutex::new(HashMap::new()),
                incumbent: Mutex::new((best_metric, delta_base.clone())),
            };
            let width = mpress_par::pool_width();
            let spec_before = self.cache.spec_runs.load(Ordering::Relaxed);
            let max_adjudications = self.config.refine_iters.saturating_mul(4);
            let used_spec: Result<usize, SimError> = mpress_par::Pool::scope(
                width,
                |pool, lane| loop {
                    let epoch = pool.epoch();
                    match pool.next_task(lane) {
                        Some(key) => {
                            self.speculate(&shared, &device_map, key);
                            pool.notify();
                        }
                        None if pool.shutdown_requested() => break,
                        None => pool.wait_epoch(epoch),
                    }
                },
                |pool| {
                    let mut frontier: BTreeMap<(u64, u64, u64, u64), FrontierEntry> =
                        BTreeMap::new();
                    let mut seen: HashSet<u64> = HashSet::new();
                    let mut submitted: HashSet<u64> = HashSet::new();
                    let mut seq = 0u64;
                    let mut used_spec = 0usize;
                    let mut since_commit = 0usize;
                    let mut adjudicated = 0usize;
                    // Generates trials for every unconsumed victim
                    // against the current incumbent and enqueues the
                    // structurally new ones on the frontier (and, when
                    // workers exist, in the shared job table).
                    let enqueue_victims =
                        |frontier: &mut BTreeMap<(u64, u64, u64, u64), FrontierEntry>,
                         seen: &mut HashSet<u64>,
                         seq: &mut u64,
                         choice: &[Choice],
                         budgets: &[Vec<(DeviceId, u32, Bytes)>],
                         consumed: &[bool]|
                         -> Result<(), SimError> {
                            for &i in &victims {
                                if consumed[i] {
                                    continue;
                                }
                                for trial in self.refine_trials(
                                    opts, &cost, classes, &minted, i, choice, budgets,
                                ) {
                                    let plan = self.emit(
                                        classes,
                                        &trial.choice,
                                        trial.budgets.as_deref().unwrap_or(budgets),
                                        &device_map,
                                    )?;
                                    let key = cache_key(&plan, &device_map);
                                    if !seen.insert(key) {
                                        continue;
                                    }
                                    let lb = self.frontier_lb(key, &plan, &device_map);
                                    let ckey = canon_key(&plan, &device_map);
                                    let plan = Arc::new(plan);
                                    if width > 1 {
                                        shared
                                            .jobs
                                            .lock()
                                            .expect("spec jobs lock")
                                            .insert(key, Arc::clone(&plan));
                                    }
                                    frontier.insert(
                                        (lb.to_bits(), ckey, key, *seq),
                                        FrontierEntry {
                                            victim: i,
                                            choice: trial.choice,
                                            budgets: trial.budgets,
                                            plan,
                                            key,
                                        },
                                    );
                                    *seq += 1;
                                }
                            }
                            Ok(())
                        };
                    enqueue_victims(
                        &mut frontier,
                        &mut seen,
                        &mut seq,
                        &choice,
                        &budgets,
                        &consumed,
                    )?;
                    if width > 1 {
                        for entry in frontier.values() {
                            if submitted.insert(entry.key) {
                                pool.push(entry.key);
                            }
                        }
                    }
                    while adjudicated < max_adjudications {
                        let Some((_, entry)) = frontier.pop_first() else {
                            break;
                        };
                        adjudicated += 1;
                        since_commit += 1;
                        rounds += 1;
                        let (verdict, was_spec) =
                            self.take_result(&shared, pool, &device_map, entry.key, &entry.plan);
                        // Conclusiveness: a speculative `Lost` is only
                        // valid while the acceptance bar it raced
                        // against is at least as tight as today's
                        // (commits may raise the makespan within the
                        // tiebreak slack). Stale verdicts re-evaluate
                        // inline; the speculative run was wasted.
                        let now_threshold = if best_metric.oom {
                            f64::INFINITY
                        } else {
                            best_metric.makespan * 1.001
                        };
                        let (verdict, was_spec) = match verdict {
                            SpecResult::Lost { threshold } if threshold < now_threshold => {
                                let fresh = self.evaluate_candidate(
                                    &entry.plan,
                                    &device_map,
                                    best_metric,
                                    delta_base.as_deref(),
                                );
                                (fresh, false)
                            }
                            other => (other, was_spec),
                        };
                        if was_spec {
                            used_spec += 1;
                        }
                        match verdict {
                            SpecResult::Failed(e) => {
                                if width > 1 {
                                    shared.jobs.lock().expect("spec jobs lock").clear();
                                }
                                return Err(e);
                            }
                            SpecResult::Outcome(metric) if metric_better(metric, best_metric) => {
                                // ---- Commit (deterministic: frontier
                                // order decided who got here first) ----
                                let FrontierEntry {
                                    victim,
                                    choice: winner_choice,
                                    budgets: winner_budgets,
                                    plan: winner_plan,
                                    ..
                                } = entry;
                                choice = winner_choice;
                                if let Some(b) = winner_budgets {
                                    budgets = b;
                                }
                                best_plan = (*winner_plan).clone();
                                best_metric = metric;
                                consumed[victim] = true;
                                refine_candidates.push(since_commit);
                                since_commit = 0;
                                if delta_base.is_some() {
                                    if self.cache.delta_replays.load(Ordering::Relaxed)
                                        == replays_mark
                                    {
                                        dry_commits += 1;
                                    } else {
                                        dry_commits = 0;
                                    }
                                }
                                if self.config.delta
                                    && !best_metric.oom
                                    && dry_commits < DELTA_DRY_ROUNDS
                                {
                                    delta_base =
                                        self.capture_base(&best_plan, &device_map)?.map(Arc::new);
                                } else {
                                    // Past the dry-spell cutoff (or OOM
                                    // incumbent): drop the base entirely
                                    // so later candidates take the
                                    // scratch path instead of paying the
                                    // delta machinery's always-fallback
                                    // replay against a stale base.
                                    delta_base = None;
                                }
                                replays_mark = self.cache.delta_replays.load(Ordering::Relaxed);
                                *shared.incumbent.lock().expect("spec incumbent lock") =
                                    (best_metric, delta_base.clone());
                                // Invalidate the speculative frontier:
                                // every queued candidate was built on
                                // the replaced incumbent.
                                frontier.clear();
                                if width > 1 {
                                    shared.jobs.lock().expect("spec jobs lock").clear();
                                }
                                enqueue_victims(
                                    &mut frontier,
                                    &mut seen,
                                    &mut seq,
                                    &choice,
                                    &budgets,
                                    &consumed,
                                )?;
                                if width > 1 {
                                    for entry in frontier.values() {
                                        if submitted.insert(entry.key) {
                                            pool.push(entry.key);
                                        }
                                    }
                                }
                            }
                            // Lost / rejected / pruned / not better:
                            // the incumbent stands.
                            _ => {}
                        }
                    }
                    if since_commit > 0 {
                        refine_candidates.push(since_commit);
                    }
                    // Stop speculation before the workers drain their
                    // remaining (now stale) deque entries.
                    if width > 1 {
                        shared.jobs.lock().expect("spec jobs lock").clear();
                    }
                    self.cache
                        .steals
                        .fetch_add(pool.steals() as usize, Ordering::Relaxed);
                    Ok(used_spec)
                },
            );
            let used_spec = used_spec?;
            // Speculative runs whose verdicts were never consumed —
            // invalidated by a commit before adjudication, or stale-
            // threshold re-evaluations — were wasted work.
            let spec_total = self
                .cache
                .spec_runs
                .load(Ordering::Relaxed)
                .saturating_sub(spec_before);
            self.cache
                .spec_wasted
                .fetch_add(spec_total.saturating_sub(used_spec), Ordering::Relaxed);
            // Portfolio check A: minting donor space may not have paid
            // off at all — try the plan with every unswitched minted
            // offload stripped.
            if !minted.is_empty() {
                let mut stripped = choice.clone();
                for &i in &minted {
                    if matches!(stripped[i], Choice::HostSwap { .. }) {
                        stripped[i] = Choice::None;
                    }
                }
                if stripped != choice {
                    let trial_plan = self.emit(classes, &stripped, &budgets, &device_map)?;
                    let metric = self.emulate_bounded_with(
                        &trial_plan,
                        &device_map,
                        Some(best_metric),
                        delta_base.as_deref(),
                    )?;
                    rounds += 1;
                    refine_candidates.push(1);
                    if let Some((metric, _)) = metric {
                        if metric_better(metric, best_metric) {
                            choice = stripped;
                            best_plan = trial_plan;
                            best_metric = metric;
                        }
                    }
                }
            }
            // Portfolio check B: the greedy start can over-commit to host
            // swaps whose queuing the estimates miss. The recompute-
            // preferred variant of the same assignment is one emit away —
            // keep whichever the emulator favors (this also guarantees
            // full MPress never loses to its own recomputation baseline).
            if opts.recompute {
                let mut rec_choice = choice.clone();
                for (i, class) in classes.iter().enumerate() {
                    if class.recomputable() && matches!(rec_choice[i], Choice::HostSwap { .. }) {
                        rec_choice[i] = Choice::Recompute {
                            overhead: cost.recompute(class.recompute_time).overhead,
                        };
                    }
                }
                if rec_choice != choice {
                    let rec_plan = self.emit(classes, &rec_choice, &budgets, &device_map)?;
                    let metric = self.emulate_bounded_with(
                        &rec_plan,
                        &device_map,
                        Some(best_metric),
                        delta_base.as_deref(),
                    )?;
                    rounds += 1;
                    refine_candidates.push(1);
                    if let Some((metric, _)) = metric {
                        if metric_better(metric, best_metric) {
                            best_plan = rec_plan;
                            best_metric = metric;
                        }
                    }
                }
            }
            let _ = best_metric;
            return Ok(MpressPlan {
                device_map,
                instrumentation: best_plan,
                spare: spare_assignment,
                refinement_rounds: rounds,
                baseline: profile.baseline.clone(),
                search: self.search_stats(),
                refine_candidates,
            });
        }

        let instrumentation = self.emit(classes, &choice, &budgets, &device_map)?;
        Ok(MpressPlan {
            device_map,
            instrumentation,
            spare: spare_assignment,
            refinement_rounds: rounds,
            baseline: profile.baseline.clone(),
            search: self.search_stats(),
            refine_candidates,
        })
    }

    /// Memory target per device after workspace headroom.
    pub fn capacity_target(&self) -> Bytes {
        self.machine
            .gpu()
            .usable_memory()
            .scale(1.0 - self.config.headroom)
    }

    /// Best non-D2D technique for a class, or `None` when nothing applies.
    /// Host swaps land in DRAM while the pinned pool lasts and spill to
    /// the slower NVMe tier after (the §V hierarchy: slower levels for
    /// longer-lived data).
    fn best_static_choice(
        &self,
        opts: OptimizationSet,
        cost: &CostModel,
        class: &TensorClass,
    ) -> Option<Choice> {
        let mut best: Option<Choice> = None;
        if opts.host_swap && class.swappable {
            let tier = self.host_tier_for(class);
            let c = match tier {
                HostTier::Dram => cost.gpu_cpu_swap(class.bytes_per_instance, class.live_interval),
                HostTier::Nvme => cost.nvme_swap(class.bytes_per_instance, class.live_interval),
            };
            best = Some(Choice::HostSwap {
                overhead: c.overhead,
                tier,
            });
        }
        if opts.recompute && class.recomputable() {
            let o = cost.recompute(class.recompute_time).overhead;
            if best.is_none_or(|b| o < b.overhead()) {
                best = Some(Choice::Recompute { overhead: o });
            }
        }
        best
    }

    /// Picks the off-GPU tier for one class: DRAM while the host pool has
    /// room for the whole job's projected swap footprint, NVMe beyond.
    /// The projection is conservative (every instance resident off-GPU at
    /// once), which is exactly the capacity planners must guarantee.
    fn host_tier_for(&self, class: &TensorClass) -> HostTier {
        let projected = class.bytes_per_instance * class.instances.len() as u64;
        // Keep 10% of host DRAM free for pinned staging buffers.
        let budget = self.machine.cpu().memory.scale(0.9);
        if projected <= budget && self.machine.nvme().is_some() {
            HostTier::Dram
        } else if self.machine.nvme().is_some() && projected > budget {
            HostTier::Nvme
        } else {
            HostTier::Dram
        }
    }

    /// Materializes choices into per-tensor directives. D2D stripes are
    /// rebuilt deterministically from the (already reserved) budgets.
    fn emit(
        &self,
        classes: &[TensorClass],
        choice: &[Choice],
        budgets: &[Vec<(DeviceId, u32, Bytes)>],
        device_map: &DeviceMap,
    ) -> Result<InstrumentationPlan, SimError> {
        let mut plan = InstrumentationPlan::new();
        for (i, class) in classes.iter().enumerate() {
            match choice[i] {
                Choice::None => {}
                Choice::Recompute { .. } => {
                    for &t in &class.instances {
                        plan.assign(t, MemoryDirective::Recompute);
                    }
                }
                Choice::HostSwap { tier, .. } => {
                    for &t in &class.instances {
                        plan.assign(t, MemoryDirective::SwapToHost(tier));
                    }
                }
                Choice::D2d => {
                    let stripe = self
                        .stripe_over(class.bytes_per_instance, &budgets[class.stage])
                        .ok_or_else(|| {
                            SimError::BadPlan(format!(
                                "no donors available for stage {}",
                                class.stage
                            ))
                        })?;
                    stripe
                        .validate(device_map.device_of(class.stage), self.machine.topology())
                        .map_err(SimError::BadPlan)?;
                    for &t in &class.instances {
                        plan.assign(t, MemoryDirective::SwapD2d(stripe.clone()));
                    }
                }
            }
        }
        Ok(plan)
    }

    /// Builds the stripe layout for one instance over a stage's donors.
    fn stripe_over(&self, bytes: Bytes, donors: &[(DeviceId, u32, Bytes)]) -> Option<StripePlan> {
        let active: Vec<(DeviceId, u32)> = donors
            .iter()
            .filter(|&&(_, _, b)| !b.is_zero())
            .map(|&(d, l, _)| (d, l))
            .collect();
        if active.is_empty() {
            return None;
        }
        if self.config.striping {
            Some(StripePlan::weighted(bytes, &active))
        } else {
            // Ablation: no striping — the whole tensor goes to the widest
            // single donor.
            let &(d, l) = active.iter().max_by_key(|&&(_, l)| l).expect("non-empty");
            Some(StripePlan::single(bytes, d, l))
        }
    }

    /// One emulator run (paper Fig. 5 step 5): a single simulated
    /// window, memoized on the exact `(plan, device_map)` structure.
    /// Refinement re-creates previously-seen plans constantly (rejected
    /// trials revert, portfolio variants converge), so hits skip whole
    /// simulator windows without changing any outcome.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the underlying run.
    pub fn emulate(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> Result<(Metric, Option<OomEvent>), SimError> {
        self.emulate_bounded(plan, device_map, None)
            .map(|outcome| outcome.expect("unbounded emulate always produces an outcome"))
    }

    /// [`Planner::emulate`] with an optional incumbent to beat. When the
    /// pre-filter is enabled and the candidate's analytic best case (see
    /// [`SimArena::makespan_lower_bound`]) already loses to a non-OOM
    /// incumbent by more than the acceptance slack, the emulator run is
    /// skipped and `None` is returned — by [`metric_better`]'s rules such
    /// a candidate could never have been accepted, so the search outcome
    /// is unchanged and only `SearchStats::prefilter_skips` grows.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the underlying run.
    pub fn emulate_bounded(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        incumbent: Option<Metric>,
    ) -> Result<Option<(Metric, Option<OomEvent>)>, SimError> {
        self.emulate_bounded_with(plan, device_map, incumbent, None)
    }

    /// [`Planner::emulate_bounded`] with an optional delta base: when
    /// the candidate survives the cache/verifier/pre-filter gates, the
    /// emulation replays against `base` instead of running from scratch
    /// (see [`PlannerConfig::delta`]). The outcome is byte-identical.
    fn emulate_bounded_with(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        incumbent: Option<Metric>,
        base: Option<&RunBase>,
    ) -> Result<Option<(Metric, Option<OomEvent>)>, SimError> {
        match self.emulate_gated(plan, device_map, incumbent, base)? {
            Gated::Outcome(metric, oom) => Ok(Some((metric, oom))),
            Gated::Rejected | Gated::CertifiedLoss | Gated::Lost => Ok(None),
        }
    }

    /// The full candidate gate chain — memoization caches, certified
    /// bounds, static verifier, lower-bound prune, then a (possibly
    /// bound-and-abort) emulator window — reporting *which* gate
    /// resolved the candidate. Aborted windows are never cached: an
    /// abort certifies a loss against the gating incumbent, not an
    /// outcome, and caching it would make cache contents depend on
    /// evaluation timing.
    fn emulate_gated(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        incumbent: Option<Metric>,
        base: Option<&RunBase>,
    ) -> Result<Gated, SimError> {
        let key = cache_key(plan, device_map);
        if let Some((metric, oom)) = self.cache.lookup(key) {
            return Ok(Gated::Outcome(metric, oom));
        }
        let ckey = canon_key(plan, device_map);
        if let Some((metric, oom)) = self.cache.lookup_canon(ckey, key, device_map) {
            return Ok(Gated::Outcome(metric, oom));
        }
        // Process-global view: outcomes another search computed for this
        // exact (job scope, structural key). A hit is promoted into the
        // local exact map and counted as a local cache hit — the outcome
        // is what the skipped run would have produced, so every search
        // decision downstream is unchanged.
        if let Some((shared, scope)) = &self.shared {
            if let Some(outcome) = shared.emu_lookup(*scope, key) {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                self.cache.insert(key, outcome);
                return Ok(Gated::Outcome(outcome.0, outcome.1));
            }
        }
        // Certified residency verdict, computed arena-free and memoized
        // per structural key; resolved before the verifier so a
        // certified-fit can skip the residency re-checks inside it.
        let verdict = self
            .config
            .bounds
            .then(|| self.bounds_verdict(key, plan, device_map));
        if self.config.verify {
            let verifier = self
                .verifier
                .get_or_init(|| PlanVerifier::new(self.machine, &self.lowered.graph));
            // A certified-fit residency verdict subsumes MP007/MP008;
            // skipping them cannot change the rejection below, because
            // capacity codes are never structural.
            let report = if matches!(verdict, Some((_, true))) {
                verifier.verify_assuming_fit(plan, device_map)
            } else {
                verifier.verify(plan, device_map)
            };
            // Only *structural* malformations reject: a predicted OOM
            // (MP007/MP008/MP013) must still reach the emulator, because
            // the feasibility loop and OOM-vs-OOM comparisons consume
            // the simulated `OomEvent`.
            if report.has_structural_errors() {
                self.cache
                    .verifier_rejections
                    .fetch_add(1, Ordering::Relaxed);
                return if incumbent.is_some() {
                    Ok(Gated::Rejected)
                } else {
                    Err(SimError::BadPlan(format!(
                        "static verifier rejected plan: {}",
                        report.summary()
                    )))
                };
            }
        }
        if let Some((certified_oom, certified_fit)) = verdict {
            if certified_fit {
                self.cache
                    .bounds_certified_fit
                    .fetch_add(1, Ordering::Relaxed);
            }
            if let Some(best) = incumbent {
                // Only prune against a feasible incumbent: against an OOM
                // one, any non-OOM candidate wins regardless of makespan,
                // and the bounds cannot predict host-pool feasibility.
                if !best.oom {
                    // Certified OOM (MP013): emulation is guaranteed to
                    // report an OOM metric, which `metric_better` can
                    // never prefer over a non-OOM incumbent.
                    if certified_oom {
                        self.cache.bounds_pruned.fetch_add(1, Ordering::Relaxed);
                        return Ok(Gated::CertifiedLoss);
                    }
                    // Certified makespan lower bound: `metric_better`
                    // accepts a candidate at up to 1.001x the incumbent
                    // (the host-traffic tiebreak), so only candidates
                    // that cannot even tie are pruned.
                    let lb = self.frontier_lb(key, plan, device_map);
                    if lb > best.makespan * 1.001 {
                        self.cache.bounds_pruned.fetch_add(1, Ordering::Relaxed);
                        return Ok(Gated::Lost);
                    }
                }
            }
        } else if self.config.prefilter {
            // Legacy analytic pre-filter: the same lower-bound prune,
            // kept as the fallback when the bounds gate is off (counted
            // separately so A/B runs stay comparable).
            if let Some(best) = incumbent {
                if !best.oom {
                    let lb = self.frontier_lb(key, plan, device_map);
                    if lb > best.makespan * 1.001 {
                        self.cache.prefilter_skips.fetch_add(1, Ordering::Relaxed);
                        return Ok(Gated::Lost);
                    }
                }
            }
        }
        // Bound-and-abort: against a feasible incumbent the emulator
        // only needs to run far enough to prove a loss — anything past
        // the acceptance slack is unobservable to `metric_better`.
        let bound = match incumbent {
            Some(best) if self.config.bound_abort && !best.oom => Some(best.makespan * 1.001),
            _ => None,
        };
        match self.emulate_uncached_bounded(plan, device_map, base, bound)? {
            RunOut::Aborted => Ok(Gated::Lost),
            RunOut::Done(outcome) => {
                self.cache.insert(key, outcome);
                self.cache.insert_canon(ckey, outcome, device_map);
                if let Some((shared, scope)) = &self.shared {
                    shared.emu_insert(*scope, key, outcome);
                }
                Ok(Gated::Outcome(outcome.0, outcome.1))
            }
        }
    }

    /// [`Planner::emulate`] without the memoization layer — one real
    /// simulator window. Cached and uncached results are asserted equal
    /// by the property suite.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors from the underlying run.
    pub fn emulate_uncached(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> Result<(Metric, Option<OomEvent>), SimError> {
        self.emulate_uncached_with(plan, device_map, None)
    }

    /// One real simulator window, optionally replayed as a delta
    /// against a captured base (byte-identical either way — the
    /// property suite pins it).
    fn emulate_uncached_with(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        base: Option<&RunBase>,
    ) -> Result<(Metric, Option<OomEvent>), SimError> {
        match self.emulate_uncached_bounded(plan, device_map, base, None)? {
            RunOut::Done(outcome) => Ok(outcome),
            RunOut::Aborted => unreachable!("an unbounded emulator run cannot exceed a bound"),
        }
    }

    /// One real simulator window under an optional makespan bound: the
    /// engine aborts the moment its simulated clock passes `bound` (see
    /// [`PlannerConfig::bound_abort`]), which the caller must treat as
    /// a certified loss against the incumbent that produced the bound —
    /// never as an outcome.
    fn emulate_uncached_bounded(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        base: Option<&RunBase>,
        bound: Option<Secs>,
    ) -> Result<RunOut, SimError> {
        self.charge_cancel()?;
        self.cache.runs.fetch_add(1, Ordering::Relaxed);
        let report = match base {
            Some(base) => {
                let outcome = self.with_arena(|arena| {
                    Simulator::new(self.machine, &self.lowered.graph, plan, device_map.clone())
                        .run_in_delta_bounded(arena, base, bound)
                })?;
                match outcome {
                    DeltaOutcome::Completed(delta) => {
                        self.cache
                            .windows_total
                            .fetch_add(delta.windows_total, Ordering::Relaxed);
                        self.cache
                            .windows_replayed
                            .fetch_add(delta.windows_replayed, Ordering::Relaxed);
                        if delta.used_delta {
                            self.cache.delta_replays.fetch_add(1, Ordering::Relaxed);
                        }
                        delta.report
                    }
                    DeltaOutcome::BoundExceeded {
                        windows_total,
                        windows_replayed,
                        ..
                    } => {
                        self.cache
                            .windows_total
                            .fetch_add(windows_total, Ordering::Relaxed);
                        self.cache
                            .windows_replayed
                            .fetch_add(windows_replayed, Ordering::Relaxed);
                        if windows_replayed < windows_total {
                            self.cache.delta_replays.fetch_add(1, Ordering::Relaxed);
                        }
                        self.cache.bound_aborts.fetch_add(1, Ordering::Relaxed);
                        return Ok(RunOut::Aborted);
                    }
                }
            }
            None => {
                let outcome = self.with_arena(|arena| {
                    Simulator::new(self.machine, &self.lowered.graph, plan, device_map.clone())
                        .run_in_bounded(arena, bound)
                })?;
                match outcome {
                    SimOutcome::Completed(report) => report,
                    SimOutcome::BoundExceeded { .. } => {
                        self.cache.bound_aborts.fetch_add(1, Ordering::Relaxed);
                        return Ok(RunOut::Aborted);
                    }
                }
            }
        };
        Ok(RunOut::Done((
            Metric {
                oom: report.oom.is_some(),
                makespan: report.makespan,
                host_traffic: report.host_traffic,
            },
            report.oom,
        )))
    }

    /// The analytic makespan lower bound for one candidate, memoized
    /// under its structural `key`. Shared by the frontier ordering
    /// (every candidate needs it) and the pruning gates (so a candidate
    /// never pays the cost-profile walk twice).
    fn frontier_lb(&self, key: u64, plan: &InstrumentationPlan, device_map: &DeviceMap) -> Secs {
        if let Some(&lb) = self.cache.lb_memo.lock().expect("lb lock").get(&key) {
            return lb;
        }
        let lb = self.with_arena(|arena| {
            arena.makespan_lower_bound(self.machine, &self.lowered.graph, plan, device_map)
        });
        self.cache.lb_memo.lock().expect("lb lock").insert(key, lb);
        lb
    }

    /// Evaluates one refinement candidate against a (possibly stale)
    /// incumbent snapshot, mapping the gate verdict into the
    /// speculative-result taxonomy. Pure modulo the memoization caches:
    /// re-running with the same snapshot yields the same verdict.
    fn evaluate_candidate(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
        incumbent: Metric,
        base: Option<&RunBase>,
    ) -> SpecResult {
        let threshold = if incumbent.oom {
            f64::INFINITY
        } else {
            incumbent.makespan * 1.001
        };
        match self.emulate_gated(plan, device_map, Some(incumbent), base) {
            Ok(Gated::Outcome(metric, _)) => SpecResult::Outcome(metric),
            Ok(Gated::Rejected) => SpecResult::Rejected,
            Ok(Gated::CertifiedLoss) => SpecResult::CertifiedLoss,
            Ok(Gated::Lost) => SpecResult::Lost { threshold },
            Err(e) => SpecResult::Failed(e),
        }
    }

    /// One speculative worker step: claim the candidate's evaluation
    /// slot, evaluate it against the current incumbent snapshot, and
    /// publish the verdict. A cleared job table (commit or search end)
    /// or an already-claimed slot makes this a no-op.
    fn speculate(&self, shared: &SpecShared, device_map: &DeviceMap, key: u64) {
        let Some(plan) = shared
            .jobs
            .lock()
            .expect("spec jobs lock")
            .get(&key)
            .cloned()
        else {
            return;
        };
        {
            let mut results = shared.results.lock().expect("spec results lock");
            if results.contains_key(&key) {
                return;
            }
            results.insert(key, SpecState::Claimed);
        }
        let (incumbent, base) = shared
            .incumbent
            .lock()
            .expect("spec incumbent lock")
            .clone();
        let verdict = self.evaluate_candidate(&plan, device_map, incumbent, base.as_deref());
        self.cache.spec_runs.fetch_add(1, Ordering::Relaxed);
        shared
            .results
            .lock()
            .expect("spec results lock")
            .insert(key, SpecState::Done(verdict));
    }

    /// Resolves one popped frontier candidate: consume a speculative
    /// verdict if a worker produced one, wait (helping with other
    /// frontier tasks) if one is in flight, or evaluate inline. Returns
    /// the verdict and whether it came from a speculative run.
    fn take_result(
        &self,
        shared: &SpecShared,
        pool: &mpress_par::Pool,
        device_map: &DeviceMap,
        key: u64,
        plan: &InstrumentationPlan,
    ) -> (SpecResult, bool) {
        loop {
            let epoch = pool.epoch();
            {
                let mut results = shared.results.lock().expect("spec results lock");
                match results.get(&key) {
                    Some(SpecState::Done(verdict)) => return (verdict.clone(), true),
                    Some(SpecState::Claimed) => {}
                    None => {
                        results.insert(key, SpecState::Claimed);
                        drop(results);
                        let (incumbent, base) = shared
                            .incumbent
                            .lock()
                            .expect("spec incumbent lock")
                            .clone();
                        let verdict =
                            self.evaluate_candidate(plan, device_map, incumbent, base.as_deref());
                        shared
                            .results
                            .lock()
                            .expect("spec results lock")
                            .insert(key, SpecState::Done(verdict.clone()));
                        return (verdict, false);
                    }
                }
            }
            // In flight on a worker: help with other frontier tasks
            // while waiting, or sleep until something completes.
            match pool.next_task(0) {
                Some(other) => {
                    self.speculate(shared, device_map, other);
                    pool.notify();
                }
                None => pool.wait_epoch(epoch),
            }
        }
    }

    /// Builds the emulator-verified replacement trials for one
    /// refinement victim, in a fixed deterministic order (the frontier
    /// tie-breaks take over from there). With
    /// [`PlannerConfig::explore`] the grid widens: the victim's
    /// directive is also dropped outright, and host swaps try the
    /// opposite tier.
    #[allow(clippy::too_many_arguments)]
    fn refine_trials(
        &self,
        opts: OptimizationSet,
        cost: &CostModel,
        classes: &[TensorClass],
        minted: &[usize],
        i: usize,
        choice: &[Choice],
        budgets: &[Vec<(DeviceId, u32, Bytes)>],
    ) -> Vec<RefineTrial> {
        let stage = classes[i].stage;
        let mut trials: Vec<RefineTrial> = Vec::with_capacity(6);
        // Candidate: a minted donor offload that turned out to cost
        // critical-path time can simply be undone (the emulator rejects
        // the trial if the memory was needed).
        if minted.contains(&i) {
            let mut trial_choice = choice.to_vec();
            trial_choice[i] = Choice::None;
            trials.push(RefineTrial {
                choice: trial_choice,
                budgets: None,
            });
        }
        // Candidate: re-route through NVLink to spare peers.
        if opts.d2d && classes[i].swappable {
            let mut trial_budgets = budgets.to_vec();
            if reserve_budget(&classes[i], &mut trial_budgets[stage]) {
                let mut trial_choice = choice.to_vec();
                trial_choice[i] = Choice::D2d;
                trials.push(RefineTrial {
                    choice: trial_choice,
                    budgets: Some(trial_budgets),
                });
            }
        }
        // Candidate: a queued host swap may lose to recomputation.
        if opts.recompute
            && classes[i].recomputable()
            && matches!(choice[i], Choice::HostSwap { .. })
        {
            let mut trial_choice = choice.to_vec();
            trial_choice[i] = Choice::Recompute {
                overhead: cost.recompute(classes[i].recompute_time).overhead,
            };
            trials.push(RefineTrial {
                choice: trial_choice,
                budgets: None,
            });
        }
        // Candidate: the reverse — recomputation contending with
        // backward compute may lose to an overlappable host swap.
        if opts.host_swap && classes[i].swappable && matches!(choice[i], Choice::Recompute { .. }) {
            let tier = self.host_tier_for(&classes[i]);
            let c = match tier {
                HostTier::Dram => {
                    cost.gpu_cpu_swap(classes[i].bytes_per_instance, classes[i].live_interval)
                }
                HostTier::Nvme => {
                    cost.nvme_swap(classes[i].bytes_per_instance, classes[i].live_interval)
                }
            };
            let mut trial_choice = choice.to_vec();
            trial_choice[i] = Choice::HostSwap {
                overhead: c.overhead,
                tier,
            };
            trials.push(RefineTrial {
                choice: trial_choice,
                budgets: None,
            });
        }
        if self.config.explore {
            // Exploratory candidate: drop the directive outright — the
            // emulator arbitrates whether the memory was really needed
            // (minted victims already get this trial above).
            if !minted.contains(&i) && choice[i].is_assigned() {
                let mut trial_choice = choice.to_vec();
                trial_choice[i] = Choice::None;
                trials.push(RefineTrial {
                    choice: trial_choice,
                    budgets: None,
                });
            }
            // Exploratory candidate: the opposite host tier (NVMe only
            // when the machine has one to model).
            if opts.host_swap && classes[i].swappable {
                if let Choice::HostSwap { tier, .. } = choice[i] {
                    let flipped = match tier {
                        HostTier::Dram => HostTier::Nvme,
                        HostTier::Nvme => HostTier::Dram,
                    };
                    if flipped == HostTier::Dram || self.machine.nvme().is_some() {
                        let c = match flipped {
                            HostTier::Dram => cost.gpu_cpu_swap(
                                classes[i].bytes_per_instance,
                                classes[i].live_interval,
                            ),
                            HostTier::Nvme => cost
                                .nvme_swap(classes[i].bytes_per_instance, classes[i].live_interval),
                        };
                        let mut trial_choice = choice.to_vec();
                        trial_choice[i] = Choice::HostSwap {
                            overhead: c.overhead,
                            tier: flipped,
                        };
                        trials.push(RefineTrial {
                            choice: trial_choice,
                            budgets: None,
                        });
                    }
                }
            }
        }
        trials
    }

    /// The `(certified_oom, certified_fit)` residency verdict for one
    /// candidate, memoized under its structural `key` (see
    /// `EmulationCache::bounds_memo`). The analyzer itself is built
    /// lazily once per planner, like the verifier.
    fn bounds_verdict(
        &self,
        key: u64,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> (bool, bool) {
        if let Some(&v) = self
            .cache
            .bounds_memo
            .lock()
            .expect("bounds lock")
            .get(&key)
        {
            return v;
        }
        let analyzer = self
            .bounds
            .get_or_init(|| BoundsAnalyzer::new(self.machine, &self.lowered.graph));
        let verdict = analyzer.certify(plan, device_map).verdict;
        let v = (
            verdict == BoundsVerdict::CertifiedOom,
            verdict == BoundsVerdict::CertifiedFit,
        );
        self.cache
            .bounds_memo
            .lock()
            .expect("bounds lock")
            .insert(key, v);
        v
    }

    /// Captures the refinement incumbent's run as a delta base (one
    /// full emulator run, counted in `emulator_runs`). Returns `None`
    /// when the run is not a usable base — non-plain config or OOM.
    fn capture_base(
        &self,
        plan: &InstrumentationPlan,
        device_map: &DeviceMap,
    ) -> Result<Option<RunBase>, SimError> {
        self.charge_cancel()?;
        self.cache.runs.fetch_add(1, Ordering::Relaxed);
        let (_, base) = self.with_arena(|arena| {
            Simulator::new(self.machine, &self.lowered.graph, plan, device_map.clone())
                .run_in_captured(arena, DELTA_WINDOWS)
        })?;
        Ok(base)
    }
}

/// Window count for delta bases: checkpoints cost O(tasks) memory each,
/// and finer windows only help while checkpoint spacing stays above the
/// restore overhead — 16 matches the granularity the divergence bounds
/// can actually exploit.
const DELTA_WINDOWS: usize = 16;

/// Consecutive all-fallback refinement rounds after which the planner
/// stops capturing delta bases for the rest of the search (see the
/// refinement loop): each capture is a full checkpointing run, so when
/// a workload's class-wide trials can never replay a suffix, continuing
/// to capture would only slow the search down.
const DELTA_DRY_ROUNDS: usize = 3;

/// Reserves donor budget for a whole class (all peak-resident instances).
/// Returns false (reserving nothing) when the donors cannot absorb it.
fn reserve_budget(class: &TensorClass, donors: &mut [(DeviceId, u32, Bytes)]) -> bool {
    let total: Bytes = donors.iter().map(|&(_, _, b)| b).sum();
    let need = class.peak_saving();
    if total < need {
        return false;
    }
    // Drain donors proportionally to their lane width (mirrors the
    // weighted stripe the emit phase builds).
    let lane_sum: u32 = donors
        .iter()
        .filter(|&&(_, _, b)| !b.is_zero())
        .map(|&(_, l, _)| l)
        .sum();
    if lane_sum == 0 {
        return false;
    }
    let mut left = need;
    for (_, lanes, budget) in donors.iter_mut() {
        if budget.is_zero() {
            continue;
        }
        let share = need
            .scale(f64::from(*lanes) / f64::from(lane_sum))
            .min(*budget)
            .min(left);
        *budget -= share;
        left = left.saturating_sub(share);
    }
    // Any residue (rounding or capped donors) drains from whoever has
    // budget left.
    if !left.is_zero() {
        for (_, _, budget) in donors.iter_mut() {
            let take = left.min(*budget);
            *budget -= take;
            left = left.saturating_sub(take);
            if left.is_zero() {
                break;
            }
        }
    }
    left.is_zero()
}

/// What one emulator run measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric {
    /// Whether the window ran out of memory.
    pub oom: bool,
    /// Simulated window wall-clock.
    pub makespan: Secs,
    /// Bytes moved over the host (PCIe) channel.
    pub host_traffic: Bytes,
}

/// Emulator metric comparison: resolving OOM beats everything; a visibly
/// (>0.1%) shorter makespan wins; at equal speed, relieving the PCIe
/// channel wins (the paper keeps D2D even when the gain is not yet
/// visible — it frees the slow path for tensors that need it).
fn metric_better(candidate: Metric, best: Metric) -> bool {
    match (candidate.oom, best.oom) {
        (false, true) => true,
        (true, false) => false,
        _ => {
            if candidate.makespan < best.makespan * 0.999 {
                return true;
            }
            candidate.makespan <= best.makespan * 1.001
                && candidate.host_traffic < best.host_traffic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
    use mpress_pipeline::{PipelineJob, ScheduleKind};

    fn small_job() -> PipelineJob {
        PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(16)
                    .hidden(1024)
                    .seq_len(512)
                    .build(),
            )
            .schedule(ScheduleKind::Dapple)
            .stages(8)
            .microbatch_size(2)
            .microbatches(8)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap()
    }

    #[test]
    fn optimization_presets() {
        assert!(OptimizationSet::all().d2d);
        assert!(!OptimizationSet::recompute_only().host_swap);
        assert!(OptimizationSet::d2d_only().d2d);
        assert!(!OptimizationSet::none().recompute);
    }

    fn m(oom: bool, makespan: Secs, host_traffic: Bytes) -> Metric {
        Metric {
            oom,
            makespan,
            host_traffic,
        }
    }

    #[test]
    fn metric_prefers_oom_resolution_then_speed() {
        let t = Bytes::gib(1);
        assert!(metric_better(m(false, 10.0, t), m(true, 1.0, t)));
        assert!(!metric_better(m(true, 1.0, t), m(false, 10.0, t)));
        assert!(metric_better(m(false, 1.0, t), m(false, 2.0, t)));
        assert!(!metric_better(m(false, 2.0, t), m(false, 1.0, t)));
        // Sub-0.1% gains are "non-visible": only accepted when they also
        // relieve the PCIe channel.
        assert!(!metric_better(m(false, 0.9999, t), m(false, 1.0, t)));
        assert!(metric_better(
            m(false, 0.9999, Bytes::ZERO),
            m(false, 1.0, t)
        ));
        assert!(!metric_better(m(false, 1.1, Bytes::ZERO), m(false, 1.0, t)));
    }

    #[test]
    fn reserve_budget_drains_proportionally() {
        let class = TensorClass {
            stage: 0,
            kind: crate::profiler::TensorClassKind::Activation { layer: Some(0) },
            instances: vec![],
            bytes_per_instance: Bytes::mib(100),
            resident_at_peak: 3,
            live_interval: 0.01,
            recompute_time: 0.001,
            swappable: true,
        };
        let mut donors = vec![
            (DeviceId(3), 2, Bytes::mib(400)),
            (DeviceId(1), 1, Bytes::mib(400)),
        ];
        assert!(reserve_budget(&class, &mut donors));
        // 300 MiB drained 2:1.
        assert_eq!(donors[0].2, Bytes::mib(200));
        assert_eq!(donors[1].2, Bytes::mib(300));
    }

    #[test]
    fn reserve_budget_refuses_when_insufficient() {
        let class = TensorClass {
            stage: 0,
            kind: crate::profiler::TensorClassKind::Stash,
            instances: vec![],
            bytes_per_instance: Bytes::gib(10),
            resident_at_peak: 1,
            live_interval: 1.0,
            recompute_time: 0.0,
            swappable: true,
        };
        let mut donors = vec![(DeviceId(3), 2, Bytes::gib(1))];
        assert!(!reserve_budget(&class, &mut donors));
    }

    #[test]
    fn fitting_job_needs_no_directives() {
        let machine = mpress_hw::Machine::dgx1();
        let job = small_job();
        let lowered = job.lower().unwrap();
        let planner = Planner::new(&machine, &job, &lowered, PlannerConfig::default());
        let plan = planner.plan().unwrap();
        assert!(
            plan.instrumentation.is_empty(),
            "small model must fit as-is"
        );
    }
}

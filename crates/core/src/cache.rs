//! Process-global plan cache and cancellation budget.
//!
//! The per-[`Planner`](crate::Planner) emulation cache memoizes outcomes
//! *within* one search; a long-running service re-plans the same
//! requests across many searches. [`PlanCache`] promotes that reuse to a
//! process-global, cloneable handle with two levels:
//!
//! * a **plan level** keyed by the request digest
//!   ([`Mpress::plan_digest`](crate::Mpress::plan_digest)) — a hit skips
//!   the whole search and returns the previously chosen
//!   [`MpressPlan`](crate::MpressPlan), byte-identical by construction;
//! * an **emulation level** keyed by `(job scope, structural plan key)`
//!   — the planner's canonical fingerprint digest (`cache_key`), scoped
//!   by the job's graph/machine fingerprint so outcomes computed for one
//!   job can never answer for another. Different searches over the same
//!   job (portfolio variants, different technique sets) share windows.
//!
//! Both levels use LRU eviction with hit/miss/eviction counters
//! ([`PlanCacheStats`]) so a service can report cache effectiveness in
//! its `stats` query. Maps are `BTreeMap` (never iterated for
//! decisions), keeping the determinism lint surface unchanged.
//!
//! [`CancelToken`] is the planner's cancellation budget: a cloneable
//! flag plus an optional emulator-run allowance, checked before every
//! simulator window. A tripped token aborts the search with
//! [`SimError::Cancelled`](mpress_sim::SimError) — used by the daemon to
//! abandon in-flight work on shutdown.

use crate::planner::MpressPlan;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default capacity for the plan level: whole plans are large (device
/// map + per-tensor directives + baseline report), so the menu of
/// distinct requests a service amortizes should stay bounded.
pub const DEFAULT_PLAN_CAPACITY: usize = 256;

/// Default capacity for the emulation level: outcomes are a few words
/// each, and one search emits hundreds of candidates.
pub const DEFAULT_EMU_CAPACITY: usize = 65_536;

/// One emulator outcome as the shared cache stores it — mirrors the
/// planner-internal `Outcome` tuple.
pub(crate) type EmuOutcome = (crate::planner::Metric, Option<mpress_sim::OomEvent>);

/// A lazily-ordered LRU map: lookups stamp entries, eviction pops the
/// stalest queue entry whose stamp is still current (classic lazy LRU —
/// stale queue entries are skipped, not searched for).
#[derive(Debug)]
struct Lru<K: Ord + Clone, V> {
    map: BTreeMap<K, (V, u64)>,
    queue: VecDeque<(K, u64)>,
    tick: u64,
    cap: usize,
}

impl<K: Ord + Clone, V: Clone> Lru<K, V> {
    fn new(cap: usize) -> Self {
        Lru {
            map: BTreeMap::new(),
            queue: VecDeque::new(),
            tick: 0,
            cap: cap.max(1),
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        let (value, stamp) = self.map.get_mut(key)?;
        *stamp = tick;
        let out = value.clone();
        self.queue.push_back((key.clone(), tick));
        Some(out)
    }

    /// Inserts (first writer wins) and returns evictions performed.
    fn insert(&mut self, key: K, value: V) -> usize {
        if self.map.contains_key(&key) {
            return 0;
        }
        self.tick += 1;
        self.map.insert(key.clone(), (value, self.tick));
        self.queue.push_back((key, self.tick));
        let mut evicted = 0;
        while self.map.len() > self.cap {
            let Some((key, stamp)) = self.queue.pop_front() else {
                break;
            };
            match self.map.get(&key) {
                // Stamp is current: this really is the stalest entry.
                Some((_, s)) if *s == stamp => {
                    self.map.remove(&key);
                    evicted += 1;
                }
                // Re-used or already gone: the queue entry was stale.
                _ => {}
            }
        }
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Counter snapshot for one [`PlanCache`] (see the module docs for the
/// two levels). All counts are process-lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PlanCacheStats {
    /// Plan-level lookups answered with a cached [`MpressPlan`].
    pub plan_hits: usize,
    /// Plan-level lookups that missed (a full search followed).
    pub plan_misses: usize,
    /// Plans evicted by the LRU policy.
    pub plan_evictions: usize,
    /// Plans currently resident.
    pub plan_entries: usize,
    /// Emulation-level lookups answered from the shared map.
    pub emu_hits: usize,
    /// Emulation-level lookups that missed.
    pub emu_misses: usize,
    /// Shared outcomes evicted by the LRU policy.
    pub emu_evictions: usize,
    /// Shared outcomes currently resident.
    pub emu_entries: usize,
}

#[derive(Debug)]
struct PlanCacheInner {
    plans: Mutex<Lru<u64, MpressPlan>>,
    emu: Mutex<Lru<(u64, u64), EmuOutcome>>,
    plan_hits: AtomicUsize,
    plan_misses: AtomicUsize,
    plan_evictions: AtomicUsize,
    emu_hits: AtomicUsize,
    emu_misses: AtomicUsize,
    emu_evictions: AtomicUsize,
}

/// A process-global structural plan cache (see the module docs).
///
/// Cloning clones the *handle*: every clone shares the same maps and
/// counters, so one cache can back many [`Mpress`](crate::Mpress)
/// instances and planner searches concurrently.
#[derive(Debug, Clone)]
pub struct PlanCache {
    inner: Arc<PlanCacheInner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// A cache with the default capacities.
    pub fn new() -> Self {
        PlanCache::with_capacity(DEFAULT_PLAN_CAPACITY, DEFAULT_EMU_CAPACITY)
    }

    /// A cache holding at most `plans` whole plans and `outcomes` shared
    /// emulator outcomes (each floored at 1).
    pub fn with_capacity(plans: usize, outcomes: usize) -> Self {
        PlanCache {
            inner: Arc::new(PlanCacheInner {
                plans: Mutex::new(Lru::new(plans)),
                emu: Mutex::new(Lru::new(outcomes)),
                plan_hits: AtomicUsize::new(0),
                plan_misses: AtomicUsize::new(0),
                plan_evictions: AtomicUsize::new(0),
                emu_hits: AtomicUsize::new(0),
                emu_misses: AtomicUsize::new(0),
                emu_evictions: AtomicUsize::new(0),
            }),
        }
    }

    /// Looks a whole plan up by its request digest.
    pub fn plan_lookup(&self, digest: u64) -> Option<MpressPlan> {
        let found = self
            .inner
            .plans
            .lock()
            .expect("plan cache lock")
            .get(&digest);
        let counter = if found.is_some() {
            &self.inner.plan_hits
        } else {
            &self.inner.plan_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Records a chosen plan under its request digest (first writer
    /// wins: concurrent planners racing on the same digest computed
    /// byte-identical plans, so either copy is authoritative).
    pub fn plan_insert(&self, digest: u64, plan: &MpressPlan) {
        let evicted = self
            .inner
            .plans
            .lock()
            .expect("plan cache lock")
            .insert(digest, plan.clone());
        self.inner
            .plan_evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Shared emulation-outcome lookup, scoped by the job fingerprint.
    pub(crate) fn emu_lookup(&self, scope: u64, key: u64) -> Option<EmuOutcome> {
        let found = self
            .inner
            .emu
            .lock()
            .expect("emu cache lock")
            .get(&(scope, key));
        let counter = if found.is_some() {
            &self.inner.emu_hits
        } else {
            &self.inner.emu_misses
        };
        counter.fetch_add(1, Ordering::Relaxed);
        found
    }

    /// Records a shared emulation outcome.
    pub(crate) fn emu_insert(&self, scope: u64, key: u64, outcome: EmuOutcome) {
        let evicted = self
            .inner
            .emu
            .lock()
            .expect("emu cache lock")
            .insert((scope, key), outcome);
        self.inner
            .emu_evictions
            .fetch_add(evicted, Ordering::Relaxed);
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        let plan_entries = self.inner.plans.lock().expect("plan cache lock").len();
        let emu_entries = self.inner.emu.lock().expect("emu cache lock").len();
        PlanCacheStats {
            plan_hits: self.inner.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.inner.plan_misses.load(Ordering::Relaxed),
            plan_evictions: self.inner.plan_evictions.load(Ordering::Relaxed),
            plan_entries,
            emu_hits: self.inner.emu_hits.load(Ordering::Relaxed),
            emu_misses: self.inner.emu_misses.load(Ordering::Relaxed),
            emu_evictions: self.inner.emu_evictions.load(Ordering::Relaxed),
            emu_entries,
        }
    }
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    /// 0 = unlimited.
    max_runs: AtomicUsize,
    runs: AtomicUsize,
}

/// A cloneable cancellation budget for planner searches.
///
/// Two ways to trip:
///
/// * [`CancelToken::cancel`] — explicit, e.g. a daemon abandoning
///   in-flight work on shutdown;
/// * an exhausted **run budget** ([`CancelToken::with_run_budget`]) —
///   every simulator window charges one run, and the window that would
///   exceed the allowance aborts instead.
///
/// A tripped token makes the next window return
/// [`SimError::Cancelled`](mpress_sim::SimError), which surfaces as
/// [`MpressError::Simulation`](crate::MpressError). The default token
/// never trips, so existing entry points are unchanged.
///
/// Note on determinism: under a parallel search the abort *point* (and
/// therefore the error's timing) depends on worker interleaving, but a
/// tripped search only ever yields an error, never a different plan.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token that never trips until [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that additionally trips after `max_runs` simulator
    /// windows have been charged (0 means unlimited).
    pub fn with_run_budget(max_runs: usize) -> Self {
        let token = CancelToken::default();
        token.inner.max_runs.store(max_runs, Ordering::Relaxed);
        token
    }

    /// Trips the token; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has tripped (explicitly or by budget).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        let max = self.inner.max_runs.load(Ordering::Relaxed);
        max != 0 && self.inner.runs.load(Ordering::Relaxed) >= max
    }

    /// Simulator windows charged so far.
    pub fn runs_charged(&self) -> usize {
        self.inner.runs.load(Ordering::Relaxed)
    }

    /// Charges one simulator window against the budget; `false` means
    /// the window must not run (tripped or out of allowance).
    pub(crate) fn charge_run(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return false;
        }
        let max = self.inner.max_runs.load(Ordering::Relaxed);
        let prior = self.inner.runs.fetch_add(1, Ordering::Relaxed);
        max == 0 || prior < max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_stalest_entry() {
        let mut lru: Lru<u64, u64> = Lru::new(2);
        assert_eq!(lru.insert(1, 10), 0);
        assert_eq!(lru.insert(2, 20), 0);
        // Touch 1 so 2 becomes the stalest.
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.insert(3, 30), 1);
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
    }

    #[test]
    fn lru_first_writer_wins() {
        let mut lru: Lru<u64, u64> = Lru::new(4);
        lru.insert(1, 10);
        lru.insert(1, 99);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn cache_counts_hits_misses_evictions() {
        let cache = PlanCache::with_capacity(8, 2);
        assert!(cache.emu_lookup(7, 1).is_none());
        let metric = crate::planner::Metric {
            oom: false,
            makespan: 1.0,
            host_traffic: mpress_hw::Bytes::ZERO,
        };
        cache.emu_insert(7, 1, (metric, None));
        cache.emu_insert(7, 2, (metric, None));
        cache.emu_insert(7, 3, (metric, None));
        assert!(cache.emu_lookup(7, 3).is_some());
        // Scoping: same key under a different job fingerprint misses.
        assert!(cache.emu_lookup(8, 3).is_none());
        let stats = cache.stats();
        assert_eq!(stats.emu_hits, 1);
        assert_eq!(stats.emu_misses, 2);
        assert_eq!(stats.emu_evictions, 1);
        assert_eq!(stats.emu_entries, 2);
    }

    /// A structurally-empty plan for exercising the plan level;
    /// `rounds` tags copies apart so hits are attributable.
    fn dummy_plan(rounds: usize) -> MpressPlan {
        MpressPlan {
            device_map: mpress_sim::DeviceMap::identity(1),
            instrumentation: mpress_compaction::InstrumentationPlan::new(),
            spare: crate::mapping::SpareAssignment {
                per_stage: Vec::new(),
            },
            refinement_rounds: rounds,
            baseline: mpress_sim::SimReport {
                makespan: 0.0,
                op_start: Vec::new(),
                op_end: Vec::new(),
                device_peak: Vec::new(),
                host_peak: mpress_hw::Bytes::ZERO,
                nvme_peak: mpress_hw::Bytes::ZERO,
                oom: None,
                d2d_traffic: mpress_hw::Bytes::ZERO,
                host_traffic: mpress_hw::Bytes::ZERO,
                nvme_traffic: mpress_hw::Bytes::ZERO,
                recompute_time: 0.0,
                timelines: None,
                trace: None,
                metrics: None,
            },
            search: crate::planner::SearchStats::default(),
            refine_candidates: Vec::new(),
        }
    }

    #[test]
    fn plan_level_counts_hits_misses_and_evictions() {
        let cache = PlanCache::with_capacity(2, 8);
        assert!(cache.plan_lookup(1).is_none());
        cache.plan_insert(1, &dummy_plan(1));
        cache.plan_insert(2, &dummy_plan(2));
        // Touch digest 1 so digest 2 becomes the stalest, then overflow.
        assert_eq!(cache.plan_lookup(1).map(|p| p.refinement_rounds), Some(1));
        cache.plan_insert(3, &dummy_plan(3));
        assert!(cache.plan_lookup(2).is_none(), "2 was the LRU victim");
        assert_eq!(cache.plan_lookup(3).map(|p| p.refinement_rounds), Some(3));
        let stats = cache.stats();
        assert_eq!(stats.plan_hits, 2);
        assert_eq!(stats.plan_misses, 2);
        assert_eq!(stats.plan_evictions, 1);
        assert_eq!(stats.plan_entries, 2);
        // The plan level never touches the emulation-level counters.
        assert_eq!(stats.emu_hits, 0);
        assert_eq!(stats.emu_misses, 0);
        assert_eq!(stats.emu_evictions, 0);
    }

    #[test]
    fn plan_level_first_writer_wins_without_eviction_noise() {
        let cache = PlanCache::with_capacity(4, 8);
        cache.plan_insert(9, &dummy_plan(1));
        cache.plan_insert(9, &dummy_plan(2));
        // The losing writer neither replaced the plan nor evicted.
        assert_eq!(cache.plan_lookup(9).map(|p| p.refinement_rounds), Some(1));
        let stats = cache.stats();
        assert_eq!(stats.plan_entries, 1);
        assert_eq!(stats.plan_evictions, 0);
        assert_eq!(stats.plan_hits, 1);
    }

    #[test]
    fn stats_snapshot_is_shared_across_clones() {
        let cache = PlanCache::with_capacity(4, 4);
        let clone = cache.clone();
        assert!(clone.plan_lookup(5).is_none());
        clone.plan_insert(5, &dummy_plan(7));
        assert_eq!(cache.plan_lookup(5).map(|p| p.refinement_rounds), Some(7));
        let stats = cache.stats();
        assert_eq!(stats.plan_misses, 1);
        assert_eq!(stats.plan_hits, 1);
        assert_eq!(stats.plan_entries, 1);
    }

    #[test]
    fn cancel_token_trips_on_cancel_and_budget() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.charge_run());
        token.cancel();
        assert!(token.is_cancelled());
        assert!(!token.charge_run());

        let budget = CancelToken::with_run_budget(2);
        assert!(budget.charge_run());
        assert!(budget.charge_run());
        assert!(!budget.charge_run());
        assert!(budget.is_cancelled());
        assert_eq!(budget.runs_charged(), 3);
    }
}

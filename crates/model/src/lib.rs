//! Analytic transformer model substrate for the MPress reproduction.
//!
//! The paper trains Bert (on SQuAD, via PipeDream) and GPT (on Wikipedia,
//! via DAPPLE) variants scaled from 0.35 B to 25.5 B parameters. We replace
//! PyTorch models with an analytic description that yields, per layer:
//!
//! * parameter / gradient / optimizer-state byte counts under a chosen
//!   [`PrecisionPolicy`],
//! * activation bytes per microbatch (Korthikanti et al.'s transformer
//!   activation-memory formula), and
//! * forward FLOPs per microbatch (backward is modeled as 2x forward, the
//!   same estimate the paper uses for its FLOPS metric).
//!
//! These are the only model properties MPress's planning and the paper's
//! evaluation depend on.
//!
//! # Example
//!
//! ```
//! use mpress_model::{zoo, PrecisionPolicy};
//!
//! let gpt = zoo::gpt_5_3b();
//! assert!((5.0e9..5.6e9).contains(&(gpt.total_params() as f64)));
//!
//! let policy = PrecisionPolicy::mixed();
//! let per_layer = gpt.layer_footprint(&policy);
//! // Adam optimizer states dominate the static per-layer memory.
//! assert!(per_layer.optimizer > per_layer.params + per_layer.grads);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod flops;
pub mod memory;
pub mod precision;
pub mod zoo;

pub use config::{ModelFamily, TransformerConfig, TransformerConfigBuilder};
pub use memory::{LayerFootprint, ModelMemory};
pub use precision::{Dtype, PrecisionPolicy};

//! Static memory footprints of model data.
//!
//! The paper's Table I splits GPU memory into four categories: activations,
//! optimizer states, parameters and gradients. [`LayerFootprint`] carries
//! the three static categories for a slice of the model; activation memory
//! is dynamic (schedule-dependent) and computed by the pipeline crate.

use crate::config::TransformerConfig;
use crate::precision::PrecisionPolicy;
use mpress_hw::Bytes;
use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::Add;

/// Static memory of a slice of the model (a layer, a stage, or the whole
/// network) under some precision policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerFootprint {
    /// Parameter storage.
    pub params: Bytes,
    /// Gradient storage.
    pub grads: Bytes,
    /// Optimizer state storage (Adam: master weights/momentum/variance).
    pub optimizer: Bytes,
}

impl LayerFootprint {
    /// Footprint of `param_count` parameters under `policy`.
    pub fn for_params(param_count: u64, policy: &PrecisionPolicy) -> Self {
        LayerFootprint {
            params: Bytes(param_count * policy.param_bytes_per_param()),
            grads: Bytes(param_count * policy.grad_bytes_per_param()),
            optimizer: Bytes(param_count * policy.optimizer_bytes_per_param()),
        }
    }

    /// Total static bytes.
    pub fn total(&self) -> Bytes {
        self.params + self.grads + self.optimizer
    }

    /// Static bytes when the parameter tensor is stashed `versions` times
    /// (PipeDream keeps one weight version per in-flight minibatch;
    /// gradients and optimizer states are not versioned).
    pub fn total_with_weight_versions(&self, versions: u64) -> Bytes {
        assert!(versions >= 1, "at least one weight version is live");
        self.params * versions + self.grads + self.optimizer
    }
}

impl Add for LayerFootprint {
    type Output = LayerFootprint;
    fn add(self, rhs: LayerFootprint) -> LayerFootprint {
        LayerFootprint {
            params: self.params + rhs.params,
            grads: self.grads + rhs.grads,
            optimizer: self.optimizer + rhs.optimizer,
        }
    }
}

impl Sum for LayerFootprint {
    fn sum<I: Iterator<Item = LayerFootprint>>(iter: I) -> LayerFootprint {
        iter.fold(LayerFootprint::default(), Add::add)
    }
}

/// Whole-model memory summary (paper Table I input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelMemory {
    /// Static categories summed over all layers + embedding.
    pub static_footprint: LayerFootprint,
    /// Activation bytes resident for ONE microbatch across the whole model.
    pub activations_per_microbatch: Bytes,
}

impl ModelMemory {
    /// Computes the summary for a model under `policy` and microbatch size.
    pub fn of(cfg: &TransformerConfig, microbatch: usize, policy: &PrecisionPolicy) -> Self {
        let static_footprint = cfg.embedding_footprint(policy)
            + (0..cfg.num_layers())
                .map(|_| cfg.layer_footprint(policy))
                .sum::<LayerFootprint>();
        let activations_per_microbatch = cfg.embedding_activation_bytes(microbatch, policy)
            + cfg.activation_bytes_per_layer(microbatch, policy) * cfg.num_layers() as u64;
        ModelMemory {
            static_footprint,
            activations_per_microbatch,
        }
    }

    /// Percentage split `(activations, optimizer, params+grads)` when
    /// `live_microbatches` activation sets are resident — the quantity the
    /// paper reports in Table I.
    pub fn category_percentages(&self, live_microbatches: f64) -> (f64, f64, f64) {
        assert!(live_microbatches >= 0.0);
        let act = self.activations_per_microbatch.as_f64() * live_microbatches;
        let opt = self.static_footprint.optimizer.as_f64();
        let pg = (self.static_footprint.params + self.static_footprint.grads).as_f64();
        let total = act + opt + pg;
        (100.0 * act / total, 100.0 * opt / total, 100.0 * pg / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelFamily;
    use crate::zoo;

    #[test]
    fn for_params_uses_policy_bytes() {
        let fp = LayerFootprint::for_params(1000, &PrecisionPolicy::mixed());
        assert_eq!(fp.params, Bytes(2000));
        assert_eq!(fp.grads, Bytes(2000));
        assert_eq!(fp.optimizer, Bytes(12000));
        assert_eq!(fp.total(), Bytes(16000));
    }

    #[test]
    fn weight_versions_multiply_only_params() {
        let fp = LayerFootprint::for_params(100, &PrecisionPolicy::full());
        // fp32: params 400, grads 400, opt 800.
        assert_eq!(fp.total_with_weight_versions(1), Bytes(1600));
        assert_eq!(fp.total_with_weight_versions(3), Bytes(400 * 3 + 400 + 800));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_weight_versions_rejected() {
        let fp = LayerFootprint::for_params(1, &PrecisionPolicy::mixed());
        let _ = fp.total_with_weight_versions(0);
    }

    #[test]
    fn footprints_add_componentwise() {
        let a = LayerFootprint::for_params(10, &PrecisionPolicy::mixed());
        let b = LayerFootprint::for_params(20, &PrecisionPolicy::mixed());
        let c = a + b;
        assert_eq!(c.params, Bytes(60));
        assert_eq!(c.optimizer, Bytes(360));
    }

    #[test]
    fn gpt_5_3b_table1_shape() {
        // Paper Table I: GPT-5.3B splits 42% activations / 44% optimizer /
        // 14% params+grads. Under DAPPLE roughly 4.5 activation sets are
        // live on average across the pipeline.
        let cfg = zoo::gpt_5_3b();
        let mm = ModelMemory::of(&cfg, 2, &PrecisionPolicy::mixed());
        let (act, opt, pg) = mm.category_percentages(4.5);
        assert!((35.0..50.0).contains(&act), "activations {act:.1}%");
        assert!((38.0..50.0).contains(&opt), "optimizer {opt:.1}%");
        assert!((10.0..18.0).contains(&pg), "params+grads {pg:.1}%");
        // Ordering: optimizer and activations both dwarf params+grads.
        assert!(act > pg && opt > pg);
    }

    #[test]
    fn model_memory_scales_with_layers() {
        let small = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(8)
            .hidden(512)
            .build();
        let big = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(16)
            .hidden(512)
            .build();
        let p = PrecisionPolicy::mixed();
        let ms = ModelMemory::of(&small, 2, &p);
        let mb = ModelMemory::of(&big, 2, &p);
        assert!(mb.static_footprint.total() > ms.static_footprint.total());
        assert!(mb.activations_per_microbatch > ms.activations_per_microbatch);
    }
}

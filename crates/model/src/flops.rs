//! Floating-point operation counts.
//!
//! The paper measures forward-pass FLOPs and "estimates the FLOPS of the
//! corresponding backward pass as two times that of the forward pass"
//! (§IV-A, Metrics). We follow the same convention.

use crate::config::TransformerConfig;

/// Forward FLOPs of one transformer layer for one microbatch:
/// matmul work `24*b*s*h^2` plus attention-score work `4*b*s^2*h`
/// (multiply-accumulate counted as two operations).
pub fn layer_forward_flops(cfg: &TransformerConfig, microbatch: usize) -> f64 {
    let b = microbatch as f64;
    let s = cfg.seq_len() as f64;
    let h = cfg.hidden() as f64;
    24.0 * b * s * h * h + 4.0 * b * s * s * h
}

/// Forward FLOPs of the embedding + output-head block for one microbatch
/// (dominated by the vocabulary projection `2*b*s*h*V`).
pub fn embedding_forward_flops(cfg: &TransformerConfig, microbatch: usize) -> f64 {
    let b = microbatch as f64;
    let s = cfg.seq_len() as f64;
    let h = cfg.hidden() as f64;
    let v = cfg.vocab() as f64;
    2.0 * b * s * h * v
}

/// Forward FLOPs of the model's output head for one microbatch. GPT
/// projects onto the vocabulary (`2*b*s*h*V`); the paper's Bert runs
/// fine-tune on SQuAD, whose span-classifier head (`2*b*s*h*2`) is
/// negligible.
pub fn head_forward_flops(cfg: &TransformerConfig, microbatch: usize) -> f64 {
    match cfg.family() {
        crate::ModelFamily::Gpt => embedding_forward_flops(cfg, microbatch),
        crate::ModelFamily::Bert => {
            let b = microbatch as f64;
            let s = cfg.seq_len() as f64;
            let h = cfg.hidden() as f64;
            2.0 * b * s * h * 2.0
        }
    }
}

/// Backward FLOPs for any block: the paper's 2x-forward estimate.
pub fn backward_flops(forward: f64) -> f64 {
    2.0 * forward
}

/// Total model FLOPs (forward + backward) for one microbatch — the
/// numerator of the achieved-TFLOPS metric in Figs. 7 and 8.
pub fn model_flops_per_microbatch(cfg: &TransformerConfig, microbatch: usize) -> f64 {
    let fwd = head_forward_flops(cfg, microbatch)
        + layer_forward_flops(cfg, microbatch) * cfg.num_layers() as f64;
    fwd + backward_flops(fwd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelFamily;

    fn tiny() -> TransformerConfig {
        TransformerConfig::builder(ModelFamily::Gpt)
            .layers(4)
            .hidden(256)
            .seq_len(128)
            .build()
    }

    #[test]
    fn flops_scale_linearly_with_microbatch() {
        let cfg = tiny();
        let f1 = layer_forward_flops(&cfg, 1);
        let f4 = layer_forward_flops(&cfg, 4);
        assert!((f4 / f1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn backward_is_twice_forward() {
        assert_eq!(backward_flops(10.0), 20.0);
    }

    #[test]
    fn total_is_three_times_forward() {
        let cfg = tiny();
        let fwd = head_forward_flops(&cfg, 2) + layer_forward_flops(&cfg, 2) * 4.0;
        let total = model_flops_per_microbatch(&cfg, 2);
        assert!((total / fwd - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bert_head_is_negligible_gpt_head_is_not() {
        let bert = TransformerConfig::builder(crate::ModelFamily::Bert)
            .layers(4)
            .hidden(256)
            .seq_len(128)
            .build();
        let gpt = tiny();
        assert!(head_forward_flops(&bert, 2) < layer_forward_flops(&bert, 2) / 100.0);
        assert!(head_forward_flops(&gpt, 2) > layer_forward_flops(&gpt, 2) / 4.0);
    }

    #[test]
    fn six_nd_rule_of_thumb_holds_for_large_models() {
        // Training FLOPs per token should approximate 6 * params for models
        // whose layer work dwarfs the attention-score term.
        let cfg = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(40)
            .hidden(4608)
            .build();
        let tokens = (cfg.seq_len() * 2) as f64;
        let per_token = model_flops_per_microbatch(&cfg, 2) / tokens;
        let six_nd = 6.0 * cfg.total_params() as f64;
        let ratio = per_token / six_nd;
        assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
    }
}

//! Numeric precision policies.
//!
//! The paper's two host systems run at different precisions: DAPPLE enables
//! FP16 mixed-precision training by default (paper §IV-C), while the
//! upgraded PipeDream runs FP32. The precision determines bytes/parameter
//! for every model-data category in Table I.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element datatype of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dtype {
    /// IEEE 754 half precision.
    F16,
    /// IEEE 754 single precision.
    F32,
}

impl Dtype {
    /// Size of one element in bytes.
    pub const fn size(self) -> u64 {
        match self {
            Dtype::F16 => 2,
            Dtype::F32 => 4,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dtype::F16 => write!(f, "fp16"),
            Dtype::F32 => write!(f, "fp32"),
        }
    }
}

/// How many bytes each model-data category costs per parameter, plus how
/// activation bytes scale relative to the FP16 baseline formula.
///
/// # Example
///
/// ```
/// use mpress_model::PrecisionPolicy;
///
/// let mixed = PrecisionPolicy::mixed();
/// // fp16 params + fp16 grads + fp32 Adam (master copy, momentum, variance)
/// assert_eq!(mixed.param_bytes_per_param() + mixed.grad_bytes_per_param(), 4);
/// assert_eq!(mixed.optimizer_bytes_per_param(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionPolicy {
    param_dtype: Dtype,
    grad_dtype: Dtype,
    optimizer_bytes_per_param: u64,
    activation_scale: f64,
    compute_fp16: bool,
}

impl PrecisionPolicy {
    /// FP16 mixed precision with an FP32 Adam optimizer
    /// (fp32 master weights + momentum + variance = 12 B/param).
    ///
    /// This reproduces Table I's category split: params+grads (4 B) ≈ 15%,
    /// optimizer states (12 B) ≈ 45% of a ~26 B/param total.
    pub fn mixed() -> Self {
        PrecisionPolicy {
            param_dtype: Dtype::F16,
            grad_dtype: Dtype::F16,
            optimizer_bytes_per_param: 12,
            activation_scale: 1.0,
            compute_fp16: true,
        }
    }

    /// Plain FP32 training with Adam (momentum + variance = 8 B/param),
    /// activations twice the FP16 baseline. Matches the PipeDream setup.
    pub fn full() -> Self {
        PrecisionPolicy {
            param_dtype: Dtype::F32,
            grad_dtype: Dtype::F32,
            optimizer_bytes_per_param: 8,
            activation_scale: 2.0,
            compute_fp16: false,
        }
    }

    /// Parameter dtype.
    pub fn param_dtype(&self) -> Dtype {
        self.param_dtype
    }

    /// Gradient dtype.
    pub fn grad_dtype(&self) -> Dtype {
        self.grad_dtype
    }

    /// Bytes of parameter storage per parameter.
    pub fn param_bytes_per_param(&self) -> u64 {
        self.param_dtype.size()
    }

    /// Bytes of gradient storage per parameter.
    pub fn grad_bytes_per_param(&self) -> u64 {
        self.grad_dtype.size()
    }

    /// Bytes of optimizer state per parameter.
    pub fn optimizer_bytes_per_param(&self) -> u64 {
        self.optimizer_bytes_per_param
    }

    /// Multiplier applied to the FP16 activation-byte formula.
    pub fn activation_scale(&self) -> f64 {
        self.activation_scale
    }

    /// Whether matmuls run on FP16 tensor cores.
    pub fn compute_fp16(&self) -> bool {
        self.compute_fp16
    }
}

impl Default for PrecisionPolicy {
    /// Defaults to [`PrecisionPolicy::mixed`], the setup of the stronger
    /// (DAPPLE) host system.
    fn default() -> Self {
        PrecisionPolicy::mixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(Dtype::F16.size(), 2);
        assert_eq!(Dtype::F32.size(), 4);
    }

    #[test]
    fn mixed_matches_table1_ratios() {
        // Table I's GPT-5.3B split is 42% activations / 44% optimizer /
        // 14% params+grads; ignoring activations the static split must be
        // optimizer : (params+grads) = 12 : 4 = 3.
        let p = PrecisionPolicy::mixed();
        let static_total =
            p.param_bytes_per_param() + p.grad_bytes_per_param() + p.optimizer_bytes_per_param();
        assert_eq!(static_total, 16);
        assert_eq!(
            p.optimizer_bytes_per_param(),
            3 * (p.param_bytes_per_param() + p.grad_bytes_per_param())
        );
    }

    #[test]
    fn full_precision_uses_fp32_everywhere() {
        let p = PrecisionPolicy::full();
        assert_eq!(p.param_dtype(), Dtype::F32);
        assert_eq!(p.param_bytes_per_param(), 4);
        assert_eq!(p.optimizer_bytes_per_param(), 8);
        assert_eq!(p.activation_scale(), 2.0);
        assert!(!p.compute_fp16());
    }

    #[test]
    fn default_is_mixed() {
        assert_eq!(PrecisionPolicy::default(), PrecisionPolicy::mixed());
    }
}

//! The paper's model zoo (Table II): five Bert and five GPT variants.
//!
//! The paper scales Bert "deeper and wider by adjusting the number of
//! encoder layers and the value of hidden sizes" and does the same for GPT.
//! Exact layer/width pairs are not published, so we choose canonical
//! transformer shapes whose parameter counts land on the paper's labels.

use crate::config::{ModelFamily, TransformerConfig};

/// Microbatch size used for all Bert experiments (paper §IV-A).
pub const BERT_MICROBATCH: usize = 12;

/// Microbatch size used for all GPT experiments (paper §IV-A).
pub const GPT_MICROBATCH: usize = 2;

/// Bert-0.35B — canonical BERT-Large; trainable without any memory
/// optimization (paper Fig. 7 "small size").
pub fn bert_0_35b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Bert)
        .name("Bert-0.35B")
        .layers(24)
        .hidden(1024)
        .build()
}

/// Bert-0.64B — the "medium" variant whose stage-0 footprint first exceeds
/// one V100 (paper §IV-B).
pub fn bert_0_64b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Bert)
        .name("Bert-0.64B")
        .layers(40)
        .hidden(1152)
        .build()
}

/// Bert-1.67B — "large": every stage exceeds single-GPU capacity.
pub fn bert_1_67b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Bert)
        .name("Bert-1.67B")
        .layers(48)
        .hidden(1664)
        .build()
}

/// Bert-4.0B — beyond the recomputation baseline's reach on DGX-1.
pub fn bert_4_0b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Bert)
        .name("Bert-4.0B")
        .layers(64)
        .hidden(2240)
        .build()
}

/// Bert-6.2B — "extra-large": total demand ~5x the server's GPU memory.
pub fn bert_6_2b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Bert)
        .name("Bert-6.2B")
        .layers(72)
        .hidden(2688)
        .build()
}

/// GPT-5.3B — the largest model original DAPPLE sustains on DGX-1.
pub fn gpt_5_3b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .name("GPT-5.3B")
        .layers(30)
        .hidden(3840)
        .build()
}

/// GPT-10.3B.
pub fn gpt_10_3b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .name("GPT-10.3B")
        .layers(40)
        .hidden(4608)
        .build()
}

/// GPT-15.4B.
pub fn gpt_15_4b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .name("GPT-15.4B")
        .layers(48)
        .hidden(5120)
        .build()
}

/// GPT-20.4B.
pub fn gpt_20_4b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .name("GPT-20.4B")
        .layers(56)
        .hidden(5504)
        .build()
}

/// GPT-25.5B — the largest variant, sustained only on DGX-2 (Fig. 8b).
pub fn gpt_25_5b() -> TransformerConfig {
    TransformerConfig::builder(ModelFamily::Gpt)
        .name("GPT-25.5B")
        .layers(64)
        .hidden(5760)
        .build()
}

/// All Bert variants of Table II, smallest first.
pub fn bert_variants() -> Vec<TransformerConfig> {
    vec![
        bert_0_35b(),
        bert_0_64b(),
        bert_1_67b(),
        bert_4_0b(),
        bert_6_2b(),
    ]
}

/// All GPT variants of Table II, smallest first.
pub fn gpt_variants() -> Vec<TransformerConfig> {
    vec![
        gpt_5_3b(),
        gpt_10_3b(),
        gpt_15_4b(),
        gpt_20_4b(),
        gpt_25_5b(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Parameter counts must land near the paper's labels.
    #[test]
    fn param_counts_match_labels() {
        let cases: Vec<(TransformerConfig, f64)> = vec![
            (bert_0_35b(), 0.35e9),
            (bert_0_64b(), 0.64e9),
            (bert_1_67b(), 1.67e9),
            (bert_4_0b(), 4.0e9),
            (bert_6_2b(), 6.2e9),
            (gpt_5_3b(), 5.3e9),
            (gpt_10_3b(), 10.3e9),
            (gpt_15_4b(), 15.4e9),
            (gpt_20_4b(), 20.4e9),
            (gpt_25_5b(), 25.5e9),
        ];
        for (cfg, label) in cases {
            let p = cfg.total_params() as f64;
            let rel = (p - label).abs() / label;
            assert!(
                rel < 0.08,
                "{}: {p:.3e} params vs label {label:.3e} ({:.1}% off)",
                cfg.name(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn variants_are_strictly_increasing() {
        for family in [bert_variants(), gpt_variants()] {
            let params: Vec<u64> = family.iter().map(|c| c.total_params()).collect();
            assert!(params.windows(2).all(|w| w[0] < w[1]), "{params:?}");
        }
    }

    #[test]
    fn heads_follow_family_width() {
        assert_eq!(bert_1_67b().heads(), 1664 / 64);
        assert_eq!(gpt_15_4b().heads(), 5120 / 128);
    }
}

//! Transformer architecture descriptions.

use crate::memory::LayerFootprint;
use crate::precision::PrecisionPolicy;
use mpress_hw::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which model family a configuration belongs to.
///
/// The family fixes dataset-style constants: sequence length, vocabulary
/// and attention head width follow the paper's setups (Bert on SQuAD with
/// 64-wide heads, GPT on Wikipedia with GPT-3-style 128-wide heads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// Bidirectional encoder (paper: trained with PipeDream on SQuAD v1.1).
    Bert,
    /// Autoregressive decoder (paper: trained with DAPPLE on Wikipedia).
    Gpt,
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFamily::Bert => write!(f, "Bert"),
            ModelFamily::Gpt => write!(f, "GPT"),
        }
    }
}

/// Architecture of one transformer model variant.
///
/// All memory and FLOP formulas derive from these few integers.
///
/// # Example
///
/// ```
/// use mpress_model::{TransformerConfig, ModelFamily};
///
/// let cfg = TransformerConfig::builder(ModelFamily::Bert)
///     .name("Bert-0.35B")
///     .layers(24)
///     .hidden(1024)
///     .build();
/// assert_eq!(cfg.heads(), 16); // Bert uses 64-wide heads
/// assert!((0.3e9..0.4e9).contains(&(cfg.total_params() as f64)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    name: String,
    family: ModelFamily,
    num_layers: usize,
    hidden: usize,
    heads: usize,
    seq_len: usize,
    vocab: usize,
}

impl TransformerConfig {
    /// Starts building a configuration for the given family.
    pub fn builder(family: ModelFamily) -> TransformerConfigBuilder {
        TransformerConfigBuilder::new(family)
    }

    /// Model variant name, e.g. `"GPT-5.3B"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The family (Bert or GPT).
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// Number of transformer layers.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Hidden (embedding) width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Training sequence length.
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Parameters of one transformer layer:
    /// attention (4h² + 4h) + MLP (8h² + 5h) + layer norms (4h).
    pub fn layer_params(&self) -> u64 {
        let h = self.hidden as u64;
        12 * h * h + 13 * h
    }

    /// Parameters of the embedding block (token + position embeddings).
    /// The GPT LM head shares the token embedding, as in the original model.
    pub fn embedding_params(&self) -> u64 {
        let h = self.hidden as u64;
        (self.vocab as u64 + self.seq_len as u64) * h
    }

    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layer_params() * self.num_layers as u64 + self.embedding_params()
    }

    /// Activation bytes one microbatch leaves resident in one layer until
    /// its backward pass, at FP16 baseline precision.
    ///
    /// Korthikanti et al. ("Reducing Activation Recomputation in Large
    /// Transformer Models", which the paper cites as \[39\]):
    /// `s*b*h*(34 + 5*a*s/h)` bytes.
    pub fn activation_bytes_per_layer(&self, microbatch: usize, policy: &PrecisionPolicy) -> Bytes {
        let s = self.seq_len as f64;
        let b = microbatch as f64;
        let h = self.hidden as f64;
        let a = self.heads as f64;
        let fp16_bytes = s * b * h * (34.0 + 5.0 * a * s / h);
        Bytes((fp16_bytes * policy.activation_scale()).round() as u64)
    }

    /// Activation bytes one microbatch leaves resident in one layer when
    /// the layer is *tensor-parallel* over `tp` GPUs (Megatron-style
    /// intra-operator parallelism).
    ///
    /// Korthikanti et al., same source as
    /// [`activation_bytes_per_layer`](Self::activation_bytes_per_layer):
    /// `s*b*h*(10 + 24/t + 5*a*s/(h*t))` bytes at FP16 — the layer-norm /
    /// dropout terms (the 10) stay replicated on every GPU while the GEMM
    /// intermediates and attention maps shard `1/t`.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn activation_bytes_per_layer_tp(
        &self,
        microbatch: usize,
        policy: &PrecisionPolicy,
        tp: usize,
    ) -> Bytes {
        assert!(tp > 0, "tensor-parallel degree must be positive");
        let s = self.seq_len as f64;
        let b = microbatch as f64;
        let h = self.hidden as f64;
        let a = self.heads as f64;
        let t = tp as f64;
        let fp16_bytes = s * b * h * (10.0 + 24.0 / t + 5.0 * a * s / (h * t));
        Bytes((fp16_bytes * policy.activation_scale()).round() as u64)
    }

    /// Activation bytes of the embedding/input block per microbatch (token
    /// ids plus the embedded sequence).
    pub fn embedding_activation_bytes(&self, microbatch: usize, policy: &PrecisionPolicy) -> Bytes {
        let s = self.seq_len as f64;
        let b = microbatch as f64;
        let h = self.hidden as f64;
        let fp16_bytes = s * b * h * 2.0;
        Bytes((fp16_bytes * policy.activation_scale()).round() as u64)
    }

    /// Bytes exchanged between adjacent pipeline stages per microbatch
    /// (the boundary activation tensor `s*b*h`).
    pub fn boundary_activation_bytes(&self, microbatch: usize, policy: &PrecisionPolicy) -> Bytes {
        let elems = (self.seq_len * microbatch * self.hidden) as u64;
        let elem_bytes = if policy.compute_fp16() { 2 } else { 4 };
        Bytes(elems * elem_bytes)
    }

    /// Static per-layer memory footprint under `policy`.
    pub fn layer_footprint(&self, policy: &PrecisionPolicy) -> LayerFootprint {
        LayerFootprint::for_params(self.layer_params(), policy)
    }

    /// Static footprint of the embedding block under `policy`.
    pub fn embedding_footprint(&self, policy: &PrecisionPolicy) -> LayerFootprint {
        LayerFootprint::for_params(self.embedding_params(), policy)
    }
}

impl fmt::Display for TransformerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, hidden {}, {:.2}B params)",
            self.name,
            self.num_layers,
            self.hidden,
            self.total_params() as f64 / 1e9
        )
    }
}

/// Builder for [`TransformerConfig`].
#[derive(Debug, Clone)]
pub struct TransformerConfigBuilder {
    family: ModelFamily,
    name: Option<String>,
    num_layers: usize,
    hidden: usize,
    heads: Option<usize>,
    seq_len: Option<usize>,
    vocab: Option<usize>,
}

impl TransformerConfigBuilder {
    fn new(family: ModelFamily) -> Self {
        TransformerConfigBuilder {
            family,
            name: None,
            num_layers: 24,
            hidden: 1024,
            heads: None,
            seq_len: None,
            vocab: None,
        }
    }

    /// Sets the variant name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the number of transformer layers.
    pub fn layers(mut self, n: usize) -> Self {
        self.num_layers = n;
        self
    }

    /// Sets the hidden width.
    pub fn hidden(mut self, h: usize) -> Self {
        self.hidden = h;
        self
    }

    /// Overrides the attention head count (defaults to the family's head
    /// width: `hidden/64` for Bert, `hidden/128` for GPT).
    pub fn heads(mut self, a: usize) -> Self {
        self.heads = Some(a);
        self
    }

    /// Overrides the sequence length (defaults: Bert 512, GPT 1024).
    pub fn seq_len(mut self, s: usize) -> Self {
        self.seq_len = Some(s);
        self
    }

    /// Overrides the vocabulary size (defaults: Bert 30522, GPT 50257).
    pub fn vocab(mut self, v: usize) -> Self {
        self.vocab = Some(v);
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if layers or hidden width are zero, or if the hidden width is
    /// not divisible by the head count.
    pub fn build(self) -> TransformerConfig {
        assert!(self.num_layers > 0, "need at least one layer");
        assert!(self.hidden > 0, "hidden width must be positive");
        let (def_head_width, def_seq, def_vocab) = match self.family {
            ModelFamily::Bert => (64, 512, 30522),
            ModelFamily::Gpt => (128, 1024, 50257),
        };
        let heads = self.heads.unwrap_or(self.hidden / def_head_width);
        assert!(heads > 0, "head count must be positive");
        assert_eq!(
            self.hidden % heads,
            0,
            "hidden width {} not divisible by {} heads",
            self.hidden,
            heads
        );
        let name = self
            .name
            .unwrap_or_else(|| format!("{}-L{}H{}", self.family, self.num_layers, self.hidden));
        TransformerConfig {
            name,
            family: self.family,
            num_layers: self.num_layers,
            hidden: self.hidden,
            heads,
            seq_len: self.seq_len.unwrap_or(def_seq),
            vocab: self.vocab.unwrap_or(def_vocab),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_large() -> TransformerConfig {
        TransformerConfig::builder(ModelFamily::Bert)
            .name("Bert-0.35B")
            .layers(24)
            .hidden(1024)
            .build()
    }

    #[test]
    fn bert_large_param_count_is_canonical() {
        // Canonical BERT-Large is ~340 M parameters.
        let p = bert_large().total_params() as f64;
        assert!((0.3e9..0.4e9).contains(&p), "got {p}");
    }

    #[test]
    fn family_defaults_apply() {
        let b = bert_large();
        assert_eq!(b.seq_len(), 512);
        assert_eq!(b.vocab(), 30522);
        assert_eq!(b.heads(), 16);

        let g = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(30)
            .hidden(3840)
            .build();
        assert_eq!(g.seq_len(), 1024);
        assert_eq!(g.vocab(), 50257);
        assert_eq!(g.heads(), 30);
    }

    #[test]
    fn layer_params_formula() {
        let cfg = bert_large();
        let h = 1024u64;
        assert_eq!(cfg.layer_params(), 12 * h * h + 13 * h);
    }

    #[test]
    fn activation_bytes_match_korthikanti() {
        // GPT-5.3B-like: s=1024, b=2, h=3840, a=30 =>
        // s*b*h*(34 + 5*30*1024/3840) = s*b*h*74 bytes at fp16.
        let g = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(30)
            .hidden(3840)
            .build();
        let act = g.activation_bytes_per_layer(2, &PrecisionPolicy::mixed());
        let expect = 1024u64 * 2 * 3840 * 74;
        assert_eq!(act.as_u64(), expect);
    }

    #[test]
    fn fp32_doubles_activations() {
        let cfg = bert_large();
        let a16 = cfg.activation_bytes_per_layer(4, &PrecisionPolicy::mixed());
        let a32 = cfg.activation_bytes_per_layer(4, &PrecisionPolicy::full());
        assert_eq!(a32.as_u64(), a16.as_u64() * 2);
    }

    #[test]
    fn boundary_bytes_scale_with_microbatch() {
        let cfg = bert_large();
        let p = PrecisionPolicy::mixed();
        let b1 = cfg.boundary_activation_bytes(1, &p);
        let b12 = cfg.boundary_activation_bytes(12, &p);
        assert_eq!(b12.as_u64(), 12 * b1.as_u64());
    }

    #[test]
    fn default_name_is_descriptive() {
        let cfg = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(8)
            .hidden(256)
            .build();
        assert_eq!(cfg.name(), "GPT-L8H256");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn build_rejects_indivisible_heads() {
        let _ = TransformerConfig::builder(ModelFamily::Bert)
            .layers(2)
            .hidden(100)
            .heads(3)
            .build();
    }

    #[test]
    fn tp_activation_at_degree_one_matches_serial_formula() {
        let cfg = bert_large();
        let p = PrecisionPolicy::mixed();
        assert_eq!(
            cfg.activation_bytes_per_layer_tp(4, &p, 1),
            cfg.activation_bytes_per_layer(4, &p)
        );
    }

    #[test]
    fn tp_activation_shrinks_with_degree_but_keeps_replicated_floor() {
        let cfg = bert_large();
        let p = PrecisionPolicy::mixed();
        let t1 = cfg.activation_bytes_per_layer_tp(4, &p, 1);
        let t4 = cfg.activation_bytes_per_layer_tp(4, &p, 4);
        let t8 = cfg.activation_bytes_per_layer_tp(4, &p, 8);
        assert!(t1 > t4 && t4 > t8, "{t1} {t4} {t8}");
        // The layer-norm/dropout terms never shard: an 8-way split holds
        // strictly more than 1/8 of the serial footprint.
        assert!(t8.as_u64() > t1.as_u64() / 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn tp_activation_rejects_zero_degree() {
        let cfg = bert_large();
        let _ = cfg.activation_bytes_per_layer_tp(1, &PrecisionPolicy::mixed(), 0);
    }
}

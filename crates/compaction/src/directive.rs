//! The instrumentation plan: tensor → technique assignments.
//!
//! MPress Static's *rewriter* instruments the dataflow graph with swap-out,
//! swap-in, drop and recompute operators (paper Fig. 5 step 4). We express
//! the result as a per-tensor [`MemoryDirective`] map that the simulator
//! expands into copy-stream tasks and compute-time adjustments.

use crate::striping::StripePlan;
use crate::technique::Technique;
use mpress_graph::{TensorId, TensorKind, TrainingGraph};
use mpress_hw::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// Which off-GPU pool a host-side swap lands in (§V's memory-hierarchy
/// extension: slower levels hold longer-lived data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum HostTier {
    /// Pinned host DRAM over PCIe.
    #[default]
    Dram,
    /// NVMe SSD behind the host (ZeRO-Infinity-style staging).
    Nvme,
}

impl fmt::Display for HostTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostTier::Dram => write!(f, "dram"),
            HostTier::Nvme => write!(f, "nvme"),
        }
    }
}

/// What the runtime does to one tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemoryDirective {
    /// Drop after the forward pass, re-run the producing layer's forward
    /// inside the backward pass (activations only).
    Recompute,
    /// Swap off-GPU after each definition/use, prefetch before the next
    /// use; the tier selects host DRAM or NVMe.
    SwapToHost(HostTier),
    /// Stripe to peer GPUs over NVLink.
    SwapD2d(StripePlan),
}

impl MemoryDirective {
    /// The technique this directive applies.
    pub fn technique(&self) -> Technique {
        match self {
            MemoryDirective::Recompute => Technique::Recompute,
            MemoryDirective::SwapToHost(_) => Technique::GpuCpuSwap,
            MemoryDirective::SwapD2d(_) => Technique::D2dSwap,
        }
    }
}

impl fmt::Display for MemoryDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryDirective::Recompute => write!(f, "recompute"),
            MemoryDirective::SwapToHost(tier) => write!(f, "swap-to-{tier}"),
            MemoryDirective::SwapD2d(p) => write!(f, "d2d {p}"),
        }
    }
}

/// Why a plan failed validation against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanValidationError {
    /// The directive names a tensor the graph does not contain.
    UnknownTensor(TensorId),
    /// Recomputation was assigned to a non-activation tensor.
    RecomputeNonActivation(TensorId),
    /// Any directive was assigned to a boundary tensor (they are tiny and
    /// pinned by the communication path).
    BoundaryTensor(TensorId),
    /// A stripe plan's chunk sizes do not sum to the tensor size.
    StripeSizeMismatch {
        /// The mis-planned tensor.
        tensor: TensorId,
        /// Tensor bytes.
        expected: Bytes,
        /// Stripe total.
        got: Bytes,
    },
}

impl fmt::Display for PlanValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanValidationError::UnknownTensor(t) => write!(f, "unknown tensor {t}"),
            PlanValidationError::RecomputeNonActivation(t) => {
                write!(f, "recomputation assigned to non-activation tensor {t}")
            }
            PlanValidationError::BoundaryTensor(t) => {
                write!(f, "directive assigned to boundary tensor {t}")
            }
            PlanValidationError::StripeSizeMismatch {
                tensor,
                expected,
                got,
            } => write!(
                f,
                "stripe plan for {tensor} moves {got} but the tensor is {expected}"
            ),
        }
    }
}

impl Error for PlanValidationError {}

/// A validated-on-demand map from tensors to directives.
///
/// # Example
///
/// ```
/// use mpress_compaction::{InstrumentationPlan, MemoryDirective};
/// use mpress_graph::TensorId;
///
/// let mut plan = InstrumentationPlan::new();
/// plan.assign(TensorId(3), MemoryDirective::Recompute);
/// assert_eq!(plan.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstrumentationPlan {
    directives: BTreeMap<TensorId, MemoryDirective>,
}

impl InstrumentationPlan {
    /// An empty plan (no memory savings — the uninstrumented baseline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns (or replaces) a directive.
    pub fn assign(&mut self, tensor: TensorId, directive: MemoryDirective) {
        self.directives.insert(tensor, directive);
    }

    /// Removes a directive, returning it when present.
    pub fn remove(&mut self, tensor: TensorId) -> Option<MemoryDirective> {
        self.directives.remove(&tensor)
    }

    /// The directive assigned to `tensor`, if any.
    pub fn get(&self, tensor: TensorId) -> Option<&MemoryDirective> {
        self.directives.get(&tensor)
    }

    /// Iterates `(tensor, directive)` pairs in tensor-id order.
    pub fn iter(&self) -> impl Iterator<Item = (TensorId, &MemoryDirective)> {
        self.directives.iter().map(|(&t, d)| (t, d))
    }

    /// Number of assigned tensors.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// True when nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Bytes of GPU memory each technique saves on its home stage,
    /// evaluated against `graph` (the paper's Table IV breakdown).
    pub fn savings_by_technique(&self, graph: &TrainingGraph) -> HashMap<Technique, Bytes> {
        let mut out: HashMap<Technique, Bytes> = HashMap::new();
        for (t, d) in self.iter() {
            let bytes = graph.tensor(t).bytes;
            *out.entry(d.technique()).or_insert(Bytes::ZERO) += bytes;
        }
        out
    }

    /// The stages each technique touches, sorted (Table IV "Applied
    /// Stages").
    pub fn stages_by_technique(&self, graph: &TrainingGraph) -> HashMap<Technique, Vec<usize>> {
        let mut out: HashMap<Technique, Vec<usize>> = HashMap::new();
        for (t, d) in self.iter() {
            let stage = graph.tensor(t).stage;
            let v = out.entry(d.technique()).or_default();
            if !v.contains(&stage) {
                v.push(stage);
            }
        }
        for v in out.values_mut() {
            v.sort_unstable();
        }
        out
    }

    /// Validates the plan against a graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation: unknown tensors, recomputation on
    /// non-activations, directives on boundary tensors, or stripe totals
    /// that do not match tensor sizes.
    pub fn validate(&self, graph: &TrainingGraph) -> Result<(), PlanValidationError> {
        for (t, d) in self.iter() {
            if t.index() >= graph.tensors().len() {
                return Err(PlanValidationError::UnknownTensor(t));
            }
            let tensor = graph.tensor(t);
            if tensor.kind == TensorKind::Boundary {
                return Err(PlanValidationError::BoundaryTensor(t));
            }
            match d {
                MemoryDirective::Recompute => {
                    if !tensor.kind.recomputable() {
                        return Err(PlanValidationError::RecomputeNonActivation(t));
                    }
                }
                MemoryDirective::SwapToHost(_) => {}
                MemoryDirective::SwapD2d(plan) => {
                    if plan.total_bytes() != tensor.bytes {
                        return Err(PlanValidationError::StripeSizeMismatch {
                            tensor: t,
                            expected: tensor.bytes,
                            got: plan.total_bytes(),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl FromIterator<(TensorId, MemoryDirective)> for InstrumentationPlan {
    fn from_iter<I: IntoIterator<Item = (TensorId, MemoryDirective)>>(iter: I) -> Self {
        InstrumentationPlan {
            directives: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_graph::{OpKind, TrainingGraph};
    use mpress_hw::DeviceId;

    fn graph() -> TrainingGraph {
        let mut b = TrainingGraph::builder(2);
        let act = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
        let par = b.add_tensor(TensorKind::Parameter, Bytes::mib(4), 0, Some(0), None);
        let bnd = b.add_tensor(TensorKind::Boundary, Bytes::mib(1), 0, None, Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |op| {
            op.reads.push(par);
            op.writes.extend([act, bnd]);
        });
        b.add_op(OpKind::Backward, 0, Some(0), 0.02, |op| {
            op.reads.extend([act, par]);
            op.frees.extend([act, bnd]);
        });
        b.build().unwrap()
    }

    #[test]
    fn valid_plan_passes() {
        let g = graph();
        let mut p = InstrumentationPlan::new();
        p.assign(TensorId(0), MemoryDirective::Recompute);
        p.assign(TensorId(1), MemoryDirective::SwapToHost(HostTier::Dram));
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn recompute_on_parameter_rejected() {
        let g = graph();
        let mut p = InstrumentationPlan::new();
        p.assign(TensorId(1), MemoryDirective::Recompute);
        assert_eq!(
            p.validate(&g),
            Err(PlanValidationError::RecomputeNonActivation(TensorId(1)))
        );
    }

    #[test]
    fn boundary_directive_rejected() {
        let g = graph();
        let mut p = InstrumentationPlan::new();
        p.assign(TensorId(2), MemoryDirective::SwapToHost(HostTier::Dram));
        assert_eq!(
            p.validate(&g),
            Err(PlanValidationError::BoundaryTensor(TensorId(2)))
        );
    }

    #[test]
    fn stripe_size_mismatch_rejected() {
        let g = graph();
        let mut p = InstrumentationPlan::new();
        p.assign(
            TensorId(0),
            MemoryDirective::SwapD2d(StripePlan::single(Bytes::mib(4), DeviceId(1), 1)),
        );
        assert!(matches!(
            p.validate(&g),
            Err(PlanValidationError::StripeSizeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_tensor_rejected() {
        let g = graph();
        let mut p = InstrumentationPlan::new();
        p.assign(TensorId(99), MemoryDirective::Recompute);
        assert_eq!(
            p.validate(&g),
            Err(PlanValidationError::UnknownTensor(TensorId(99)))
        );
    }

    #[test]
    fn savings_and_stage_breakdown() {
        let g = graph();
        let mut p = InstrumentationPlan::new();
        p.assign(TensorId(0), MemoryDirective::Recompute);
        p.assign(TensorId(1), MemoryDirective::SwapToHost(HostTier::Nvme));
        let savings = p.savings_by_technique(&g);
        assert_eq!(savings[&Technique::Recompute], Bytes::mib(8));
        assert_eq!(savings[&Technique::GpuCpuSwap], Bytes::mib(4));
        let stages = p.stages_by_technique(&g);
        assert_eq!(stages[&Technique::Recompute], vec![0]);
    }

    #[test]
    fn from_iterator_collects() {
        let p: InstrumentationPlan = [(TensorId(0), MemoryDirective::Recompute)]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 1);
    }
}

//! The MPress *compaction library* (paper Fig. 5, "Compaction Lib").
//!
//! Implements the three memory-saving techniques MPress combines and the
//! machinery around them:
//!
//! * **Recomputation** — drop a forward activation, re-run its forward
//!   computation inside the backward pass (costs GPU compute, applies to
//!   activations only).
//! * **GPU-CPU swap** — round-trip a tensor over PCIe to pinned host
//!   memory (applies to anything, slow: the paper measures 42 ms for a
//!   216 MB tensor).
//! * **D2D swap** — the paper's novel technique: stripe a tensor over
//!   multiple NVLink lanes to peer GPUs with spare memory
//!   ([`StripePlan`]), 7-8x faster than the PCIe path.
//!
//! [`CostModel`] reproduces the per-tensor cost comparison of Table III;
//! [`InstrumentationPlan`] is the tensor→technique assignment MPress's
//! planner emits and the simulator executes; [`SwapMetadataTable`] tracks
//! in-flight sub-blocks exactly as §III-C describes.

#![forbid(unsafe_code)]

pub mod cost;
pub mod directive;
pub mod metadata;
pub mod rewrite;
pub mod striping;
pub mod technique;

pub use cost::CostModel;
pub use directive::{HostTier, InstrumentationPlan, MemoryDirective, PlanValidationError};
pub use metadata::{SwapMetadataTable, SwapRecord, SwapState};
pub use rewrite::{instrument, RewriteStats};
pub use striping::{StripeChunk, StripePlan};
pub use technique::Technique;

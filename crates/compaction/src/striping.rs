//! Data striping for D2D swap (paper §III-C).
//!
//! A pressured GPU can reach several peers over disjoint NVLink lane sets,
//! so MPress partitions a tensor into sub-blocks transmitted in parallel:
//!
//! * on symmetric fabrics (DGX-2) the sub-blocks are **equally sized**;
//! * on asymmetric fabrics (DGX-1), sub-block sizes are **proportional to
//!   the per-peer lane bandwidth** (GPU0→GPU3 has two lanes and receives
//!   twice the bytes of GPU0→GPU1's single lane).

use mpress_hw::{BandwidthCurve, Bytes, DeviceId, Secs, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One sub-block of a striped transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeChunk {
    /// Importing peer GPU.
    pub target: DeviceId,
    /// NVLink lanes used toward that peer.
    pub lanes: u32,
    /// Bytes of the sub-block.
    pub bytes: Bytes,
}

/// How one tensor is split across peers for a D2D swap.
///
/// # Example
///
/// ```
/// use mpress_compaction::StripePlan;
/// use mpress_hw::{Topology, DeviceId, Bytes};
///
/// let topo = Topology::dgx1();
/// // GPU0 stripes 300 MiB to its two double-lane neighbours GPU3, GPU4.
/// let plan = StripePlan::weighted(
///     Bytes::mib(300),
///     &[(DeviceId(3), 2), (DeviceId(4), 2)],
/// );
/// assert_eq!(plan.total_bytes(), Bytes::mib(300));
/// assert!(plan.validate(DeviceId(0), &topo).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripePlan {
    chunks: Vec<StripeChunk>,
}

impl StripePlan {
    /// Splits `bytes` equally across `targets`, each using `lanes` lanes
    /// (the symmetric-topology policy).
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or `lanes == 0`.
    pub fn equal(bytes: Bytes, targets: &[DeviceId], lanes: u32) -> Self {
        assert!(!targets.is_empty(), "need at least one stripe target");
        assert!(lanes > 0, "need at least one lane per stripe");
        let shares = bytes.split_even(targets.len());
        let chunks = targets
            .iter()
            .zip(shares)
            .map(|(&target, bytes)| StripeChunk {
                target,
                lanes,
                bytes,
            })
            .collect();
        StripePlan { chunks }
    }

    /// Splits `bytes` across `(target, lanes)` pairs proportionally to the
    /// lane counts (the asymmetric-topology policy). Rounding residue goes
    /// to the widest pair.
    ///
    /// # Panics
    ///
    /// Panics if no pair is given or any lane count is zero.
    pub fn weighted(bytes: Bytes, targets: &[(DeviceId, u32)]) -> Self {
        assert!(!targets.is_empty(), "need at least one stripe target");
        let total_lanes: u32 = targets.iter().map(|&(_, l)| l).sum();
        assert!(
            targets.iter().all(|&(_, l)| l > 0),
            "every stripe needs at least one lane"
        );
        let mut chunks: Vec<StripeChunk> = targets
            .iter()
            .map(|&(target, lanes)| StripeChunk {
                target,
                lanes,
                bytes: bytes.scale(f64::from(lanes) / f64::from(total_lanes)),
            })
            .collect();
        let assigned: Bytes = chunks.iter().map(|c| c.bytes).sum();
        // Fix rounding drift on the widest chunk so totals match exactly.
        let widest = chunks
            .iter_mut()
            .max_by_key(|c| c.lanes)
            .expect("non-empty");
        if assigned > bytes {
            widest.bytes -= assigned - bytes;
        } else {
            widest.bytes += bytes - assigned;
        }
        StripePlan { chunks }
    }

    /// Splits `bytes` equally across `(target, lanes)` pairs, *ignoring*
    /// the lane counts for the split (each chunk still transfers over its
    /// own lanes). This is the naive policy the paper's bandwidth-weighted
    /// striping improves on for asymmetric fabrics: the narrowest donor's
    /// chunk takes the longest and sets the stripe's completion time.
    ///
    /// # Panics
    ///
    /// Panics if no pair is given or any lane count is zero.
    pub fn equal_over(bytes: Bytes, targets: &[(DeviceId, u32)]) -> Self {
        assert!(!targets.is_empty(), "need at least one stripe target");
        assert!(
            targets.iter().all(|&(_, l)| l > 0),
            "every stripe needs at least one lane"
        );
        let shares = bytes.split_even(targets.len());
        let chunks = targets
            .iter()
            .zip(shares)
            .map(|(&(target, lanes), bytes)| StripeChunk {
                target,
                lanes,
                bytes,
            })
            .collect();
        StripePlan { chunks }
    }

    /// A single-target "stripe" (no striping).
    pub fn single(bytes: Bytes, target: DeviceId, lanes: u32) -> Self {
        StripePlan::equal(bytes, &[target], lanes)
    }

    /// The sub-blocks.
    pub fn chunks(&self) -> &[StripeChunk] {
        &self.chunks
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> Bytes {
        self.chunks.iter().map(|c| c.bytes).sum()
    }

    /// Number of sub-blocks (the metadata table records this, §III-C).
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// One-way transfer time: sub-blocks move in parallel over disjoint
    /// lanes, so the slowest chunk dominates.
    pub fn one_way_time(&self) -> Secs {
        self.chunks
            .iter()
            .map(|c| BandwidthCurve::nvlink_lanes(c.lanes).transfer_time(c.bytes))
            .fold(0.0, f64::max)
    }

    /// Round-trip (swap-out + swap-in) time — the cost the planner compares
    /// against live intervals.
    pub fn round_trip_time(&self) -> Secs {
        2.0 * self.one_way_time()
    }

    /// Checks the plan against a topology: every target must be
    /// NVLink-reachable from `source` with at least the requested lanes,
    /// and targets must be distinct and different from the source.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self, source: DeviceId, topology: &Topology) -> Result<(), String> {
        let mut seen = Vec::new();
        for c in &self.chunks {
            if c.target == source {
                return Err(format!("stripe targets the source {source}"));
            }
            if seen.contains(&c.target) {
                return Err(format!("duplicate stripe target {}", c.target));
            }
            seen.push(c.target);
            let lanes = topology.nvlink_lanes(source, c.target);
            if lanes == 0 {
                return Err(format!("{source} cannot reach {} over NVLink", c.target));
            }
            if c.lanes > lanes {
                return Err(format!(
                    "stripe to {} wants {} lanes but only {} exist",
                    c.target, c.lanes, lanes
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for StripePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stripe[")?;
        for (i, c) in self.chunks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}x{} -> {}", c.bytes, c.lanes, c.target)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_conserves_bytes() {
        let p = StripePlan::equal(Bytes(1001), &[DeviceId(1), DeviceId(2), DeviceId(3)], 2);
        assert_eq!(p.total_bytes(), Bytes(1001));
        assert_eq!(p.n_chunks(), 3);
    }

    #[test]
    fn weighted_is_proportional_and_exact() {
        let p = StripePlan::weighted(Bytes::mib(300), &[(DeviceId(3), 2), (DeviceId(1), 1)]);
        assert_eq!(p.total_bytes(), Bytes::mib(300));
        let c3 = p.chunks().iter().find(|c| c.target == DeviceId(3)).unwrap();
        let c1 = p.chunks().iter().find(|c| c.target == DeviceId(1)).unwrap();
        assert_eq!(c3.bytes, Bytes::mib(200));
        assert_eq!(c1.bytes, Bytes::mib(100));
    }

    #[test]
    fn weighted_stripes_finish_together() {
        // Proportional sizing equalizes per-chunk times, so the one-way
        // time of a weighted plan matches a lone chunk's time closely.
        let p = StripePlan::weighted(Bytes::mib(300), &[(DeviceId(3), 2), (DeviceId(1), 1)]);
        let t2 = BandwidthCurve::nvlink_lanes(2).transfer_time(Bytes::mib(200));
        let t1 = BandwidthCurve::nvlink_lanes(1).transfer_time(Bytes::mib(100));
        assert!((t1 - t2).abs() / t1 < 0.05, "t1 {t1} vs t2 {t2}");
        assert!((p.one_way_time() - t1.max(t2)).abs() < 1e-12);
    }

    #[test]
    fn striping_beats_single_link() {
        let bytes = Bytes::mib(512);
        let single = StripePlan::single(bytes, DeviceId(3), 2);
        let striped = StripePlan::weighted(
            bytes,
            &[(DeviceId(3), 2), (DeviceId(4), 2), (DeviceId(1), 1)],
        );
        assert!(striped.one_way_time() < single.one_way_time());
    }

    #[test]
    fn round_trip_is_double() {
        let p = StripePlan::single(Bytes::mib(64), DeviceId(2), 2);
        assert!((p.round_trip_time() - 2.0 * p.one_way_time()).abs() < 1e-15);
    }

    #[test]
    fn validate_accepts_good_dgx1_plan() {
        let topo = Topology::dgx1();
        let p = StripePlan::weighted(
            Bytes::mib(100),
            &[
                (DeviceId(3), 2),
                (DeviceId(4), 2),
                (DeviceId(1), 1),
                (DeviceId(2), 1),
            ],
        );
        assert!(p.validate(DeviceId(0), &topo).is_ok());
    }

    #[test]
    fn validate_rejects_unreachable_target() {
        let topo = Topology::dgx1();
        let p = StripePlan::single(Bytes::mib(1), DeviceId(5), 1);
        assert!(p.validate(DeviceId(0), &topo).is_err());
    }

    #[test]
    fn validate_rejects_excess_lanes() {
        let topo = Topology::dgx1();
        let p = StripePlan::single(Bytes::mib(1), DeviceId(1), 2); // only 1 lane exists
        let err = p.validate(DeviceId(0), &topo).unwrap_err();
        assert!(err.contains("lanes"), "{err}");
    }

    #[test]
    fn validate_rejects_self_and_duplicates() {
        let topo = Topology::dgx2();
        let p = StripePlan::single(Bytes::mib(1), DeviceId(0), 1);
        assert!(p.validate(DeviceId(0), &topo).is_err());
        let p2 = StripePlan {
            chunks: vec![
                StripeChunk {
                    target: DeviceId(1),
                    lanes: 1,
                    bytes: Bytes::mib(1),
                },
                StripeChunk {
                    target: DeviceId(1),
                    lanes: 1,
                    bytes: Bytes::mib(1),
                },
            ],
        };
        assert!(p2.validate(DeviceId(0), &topo).is_err());
    }

    #[test]
    fn paper_table3_d2d_cost_regime() {
        // Table III: a 216 MB tensor over four NVLink lanes costs ~6 ms
        // round trip. Our model should land in the single-digit-ms regime.
        let p = StripePlan::weighted(Bytes::mib(216), &[(DeviceId(3), 2), (DeviceId(4), 2)]);
        let ms = p.round_trip_time() * 1e3;
        assert!((3.0..9.0).contains(&ms), "round trip {ms:.1} ms");
    }

    #[test]
    fn equal_over_conserves_and_loses_to_weighted_on_asymmetric_donors() {
        let donors = [(DeviceId(3), 2), (DeviceId(4), 1), (DeviceId(7), 1)];
        let bytes = Bytes::gib(1);
        let equal = StripePlan::equal_over(bytes, &donors);
        let weighted = StripePlan::weighted(bytes, &donors);
        assert_eq!(equal.total_bytes(), bytes);
        // Equal shares over unequal lanes: the 1-lane chunk dominates, so
        // the weighted plan strictly wins.
        assert!(weighted.one_way_time() < equal.one_way_time());
        // On a symmetric donor set the two policies coincide.
        let sym = [(DeviceId(1), 2), (DeviceId(2), 2)];
        let e = StripePlan::equal_over(bytes, &sym);
        let w = StripePlan::weighted(bytes, &sym);
        assert!((e.one_way_time() - w.one_way_time()).abs() < 1e-12);
    }
}

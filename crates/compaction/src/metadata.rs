//! The D2D swap metadata table (paper §III-C).
//!
//! > "We manage a metadata table to keep track of the states of tensors
//! > that go through our D2D swap. For each tensor, we record ... the
//! > number of sub-blocks, the sizes of each sub-block, and the indices of
//! > target GPU devices. This information is used to guide the execution
//! > of the latter swap-in operator and updated when it completes."

use crate::striping::StripePlan;
use mpress_graph::TensorId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Where a D2D-swapped tensor currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapState {
    /// Resident on its home GPU.
    Resident,
    /// Swap-out in progress.
    SwappingOut,
    /// Fully exported to its peers.
    SwappedOut,
    /// Swap-in in progress.
    SwappingIn,
}

/// One tensor's metadata entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapRecord {
    /// The stripe layout: sub-block count, sizes and target devices.
    pub plan: StripePlan,
    /// Current location state.
    pub state: SwapState,
    /// How many swap round trips the tensor has completed.
    pub completed_round_trips: u64,
}

/// Tracks every D2D-swapped tensor's sub-blocks and state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SwapMetadataTable {
    records: HashMap<TensorId, SwapRecord>,
}

impl SwapMetadataTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor before its first swap-out.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is already registered.
    pub fn register(&mut self, tensor: TensorId, plan: StripePlan) {
        let prev = self.records.insert(
            tensor,
            SwapRecord {
                plan,
                state: SwapState::Resident,
                completed_round_trips: 0,
            },
        );
        assert!(prev.is_none(), "tensor {tensor} registered twice");
    }

    /// Looks up a record.
    pub fn get(&self, tensor: TensorId) -> Option<&SwapRecord> {
        self.records.get(&tensor)
    }

    /// Number of tracked tensors.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no tensor is tracked.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Marks the start of a swap-out.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is unknown or not resident.
    pub fn begin_swap_out(&mut self, tensor: TensorId) {
        let r = self.record_mut(tensor);
        assert_eq!(r.state, SwapState::Resident, "{tensor} not resident");
        r.state = SwapState::SwappingOut;
    }

    /// Marks swap-out completion.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not mid-swap-out.
    pub fn finish_swap_out(&mut self, tensor: TensorId) {
        let r = self.record_mut(tensor);
        assert_eq!(r.state, SwapState::SwappingOut, "{tensor} not swapping out");
        r.state = SwapState::SwappedOut;
    }

    /// Marks the start of a swap-in; the stored plan guides which peers to
    /// fetch which sub-blocks from.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not fully swapped out.
    pub fn begin_swap_in(&mut self, tensor: TensorId) -> &StripePlan {
        let r = self.record_mut(tensor);
        assert_eq!(r.state, SwapState::SwappedOut, "{tensor} not swapped out");
        r.state = SwapState::SwappingIn;
        &self.records[&tensor].plan
    }

    /// Marks swap-in completion, updating the record as §III-C requires.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not mid-swap-in.
    pub fn finish_swap_in(&mut self, tensor: TensorId) {
        let r = self.record_mut(tensor);
        assert_eq!(r.state, SwapState::SwappingIn, "{tensor} not swapping in");
        r.state = SwapState::Resident;
        r.completed_round_trips += 1;
    }

    fn record_mut(&mut self, tensor: TensorId) -> &mut SwapRecord {
        self.records
            .get_mut(&tensor)
            .unwrap_or_else(|| panic!("tensor {tensor} not registered"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_hw::{Bytes, DeviceId};

    fn plan() -> StripePlan {
        StripePlan::equal(Bytes::mib(64), &[DeviceId(4), DeviceId(5)], 2)
    }

    #[test]
    fn full_round_trip_updates_state_machine() {
        let mut t = SwapMetadataTable::new();
        let id = TensorId(7);
        t.register(id, plan());
        assert_eq!(t.get(id).unwrap().state, SwapState::Resident);
        t.begin_swap_out(id);
        t.finish_swap_out(id);
        assert_eq!(t.get(id).unwrap().state, SwapState::SwappedOut);
        let p = t.begin_swap_in(id).clone();
        assert_eq!(p.n_chunks(), 2);
        t.finish_swap_in(id);
        let r = t.get(id).unwrap();
        assert_eq!(r.state, SwapState::Resident);
        assert_eq!(r.completed_round_trips, 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_rejected() {
        let mut t = SwapMetadataTable::new();
        t.register(TensorId(1), plan());
        t.register(TensorId(1), plan());
    }

    #[test]
    #[should_panic(expected = "not swapped out")]
    fn swap_in_requires_swapped_out() {
        let mut t = SwapMetadataTable::new();
        t.register(TensorId(1), plan());
        t.begin_swap_in(TensorId(1));
    }

    #[test]
    fn len_and_empty() {
        let mut t = SwapMetadataTable::new();
        assert!(t.is_empty());
        t.register(TensorId(0), plan());
        assert_eq!(t.len(), 1);
    }
}

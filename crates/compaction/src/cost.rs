//! Per-tensor cost model (paper Table III and §III-D).
//!
//! For each candidate tensor the planner compares:
//!
//! * **Recomputation**: costs the producing layer's forward time, always
//!   paid on the compute stream (it contends with backward work).
//! * **GPU-CPU swap**: a PCIe round trip; its *overhead* is the round-trip
//!   time minus the tensor's live interval (footnote 2) — fully hidden
//!   when the tensor lives long enough.
//! * **D2D swap**: an NVLink-striped round trip, an order of magnitude
//!   faster, with the same hiding rule.

use crate::striping::StripePlan;
use crate::technique::Technique;
use mpress_hw::{Bytes, Machine, Secs};
use serde::{Deserialize, Serialize};

/// The cost of applying one technique to one tensor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechniqueCost {
    /// Which technique.
    pub technique: Technique,
    /// Raw time the technique spends (round trip for swaps, forward
    /// re-execution for recomputation).
    pub raw_time: Secs,
    /// Extra delay imposed on training after hiding behind the live
    /// interval (recomputation can never hide: it runs on the compute
    /// stream).
    pub overhead: Secs,
}

/// Evaluates technique costs against one machine.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: Machine,
}

impl CostModel {
    /// Builds a cost model for `machine`.
    pub fn new(machine: Machine) -> Self {
        CostModel { machine }
    }

    /// The machine being modeled.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Cost of recomputing a dropped activation whose producing layer's
    /// forward pass takes `layer_forward_time`.
    pub fn recompute(&self, layer_forward_time: Secs) -> TechniqueCost {
        TechniqueCost {
            technique: Technique::Recompute,
            raw_time: layer_forward_time,
            // Recomputation always contends with backward compute.
            overhead: layer_forward_time,
        }
    }

    /// Cost of a PCIe round trip for `bytes`, hidden behind
    /// `live_interval`.
    pub fn gpu_cpu_swap(&self, bytes: Bytes, live_interval: Secs) -> TechniqueCost {
        let raw = 2.0 * self.machine.pcie_transfer_time(bytes);
        TechniqueCost {
            technique: Technique::GpuCpuSwap,
            raw_time: raw,
            overhead: (raw - live_interval).max(0.0),
        }
    }

    /// Cost of an NVMe-tier round trip (GPU -> host -> SSD and back): the
    /// slower leg of each direction dominates the pipelined staging.
    pub fn nvme_swap(&self, bytes: Bytes, live_interval: Secs) -> TechniqueCost {
        let pcie_leg = self.machine.pcie_transfer_time(bytes);
        let raw = if self.machine.nvme().is_some() {
            let out = pcie_leg.max(self.machine.nvme_transfer_time(bytes, true));
            let inn = pcie_leg.max(self.machine.nvme_transfer_time(bytes, false));
            out + inn
        } else {
            2.0 * pcie_leg
        };
        TechniqueCost {
            technique: Technique::GpuCpuSwap,
            raw_time: raw,
            overhead: (raw - live_interval).max(0.0),
        }
    }

    /// Cost of a striped D2D round trip, hidden behind `live_interval`.
    pub fn d2d_swap(&self, plan: &StripePlan, live_interval: Secs) -> TechniqueCost {
        let raw = plan.round_trip_time();
        TechniqueCost {
            technique: Technique::D2dSwap,
            raw_time: raw,
            overhead: (raw - live_interval).max(0.0),
        }
    }

    /// The paper's Table III row for one tensor: raw times of all three
    /// techniques (`recompute`, `gpu_cpu`, `d2d`) in that order.
    pub fn table3_row(
        &self,
        bytes: Bytes,
        layer_forward_time: Secs,
        d2d_plan: &StripePlan,
    ) -> (Secs, Secs, Secs) {
        (
            layer_forward_time,
            2.0 * self.machine.pcie_transfer_time(bytes),
            d2d_plan.round_trip_time(),
        )
    }

    /// Picks the technique with the least overhead, breaking ties by the
    /// paper's §III-D preference order:
    ///
    /// 1. a swap whose cost hides entirely beats recomputation (it costs
    ///    no compute),
    /// 2. GPU-CPU swap beats D2D swap when both hide (saving scarce spare
    ///    GPU memory for tighter tensors),
    /// 3. recomputation beats D2D swap at equal overhead (same reason).
    pub fn choose(
        &self,
        recompute: Option<TechniqueCost>,
        gpu_cpu: TechniqueCost,
        d2d: Option<TechniqueCost>,
    ) -> TechniqueCost {
        let mut candidates: Vec<TechniqueCost> = Vec::with_capacity(3);
        // Order encodes tie-break preference: GPU-CPU first, then
        // recomputation, then D2D.
        candidates.push(gpu_cpu);
        if let Some(r) = recompute {
            candidates.push(r);
        }
        if let Some(d) = d2d {
            candidates.push(d);
        }
        candidates
            .into_iter()
            .min_by(|a, b| {
                a.overhead
                    .partial_cmp(&b.overhead)
                    .expect("finite overheads")
            })
            .expect("at least one candidate")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_hw::DeviceId;

    fn model() -> CostModel {
        CostModel::new(Machine::dgx1())
    }

    fn plan(bytes: Bytes) -> StripePlan {
        StripePlan::weighted(bytes, &[(DeviceId(3), 2), (DeviceId(4), 2)])
    }

    /// Table III, tensor t1: 216 MB, 78 ms live interval. GPU-CPU swap
    /// (~42 ms) hides fully; MPress prefers it over D2D.
    #[test]
    fn long_lived_tensor_prefers_gpu_cpu_swap() {
        let m = model();
        let bytes = Bytes::mib(216);
        let live = 0.078;
        let rec = m.recompute(0.004);
        let host = m.gpu_cpu_swap(bytes, live);
        let d2d = m.d2d_swap(&plan(bytes), live);
        assert_eq!(host.overhead, 0.0);
        let chosen = m.choose(Some(rec), host, Some(d2d));
        assert_eq!(chosen.technique, Technique::GpuCpuSwap);
    }

    /// Table III, tensor t2: 115 MB, 16 ms live interval. GPU-CPU swap
    /// (~22 ms) cannot hide; recomputation costs 3 ms of compute; D2D
    /// (~3 ms) hides fully — MPress chooses D2D.
    #[test]
    fn short_lived_tensor_prefers_d2d() {
        let m = model();
        let bytes = Bytes::mib(115);
        let live = 0.016;
        let rec = m.recompute(0.003);
        let host = m.gpu_cpu_swap(bytes, live);
        let d2d = m.d2d_swap(&plan(bytes), live);
        assert!(host.overhead > 0.0);
        assert_eq!(d2d.overhead, 0.0);
        let chosen = m.choose(Some(rec), host, Some(d2d));
        assert_eq!(chosen.technique, Technique::D2dSwap);
    }

    /// Table III, tensor t3: 216 MB, 2 ms live interval. Neither swap
    /// hides; recomputation (4 ms) ties D2D's exposed time but spares the
    /// scarce peer memory — MPress prefers recomputation.
    #[test]
    fn very_short_lived_tensor_prefers_recompute_on_tie() {
        let m = model();
        let bytes = Bytes::mib(216);
        let live = 0.002;
        let d2d_cost = m.d2d_swap(&plan(bytes), live);
        // Construct the recompute cost to tie exactly, as in the paper.
        let rec = m.recompute(d2d_cost.overhead);
        let host = m.gpu_cpu_swap(bytes, live);
        let chosen = m.choose(Some(rec), host, Some(d2d_cost));
        assert_eq!(chosen.technique, Technique::Recompute);
    }

    #[test]
    fn gpu_cpu_cost_matches_paper_regime() {
        // Paper Table III: 216 MB costs ~42 ms over PCIe round trip.
        let m = model();
        let c = m.gpu_cpu_swap(Bytes::mib(216), 0.0);
        let ms = c.raw_time * 1e3;
        assert!((30.0..55.0).contains(&ms), "round trip {ms:.1} ms");
    }

    #[test]
    fn d2d_is_roughly_7x_faster_than_pcie() {
        // Paper §IV-D (t5): D2D improves on GPU-CPU swap by ~7.6x.
        let m = model();
        let bytes = Bytes::mib(384);
        let host = m.gpu_cpu_swap(bytes, 0.0).raw_time;
        let d2d = m
            .d2d_swap(
                &StripePlan::weighted(bytes, &[(DeviceId(3), 2), (DeviceId(4), 2)]),
                0.0,
            )
            .raw_time;
        let ratio = host / d2d;
        assert!((5.0..10.0).contains(&ratio), "ratio {ratio:.1}");
    }

    #[test]
    fn overhead_clamps_at_zero() {
        let m = model();
        let c = m.gpu_cpu_swap(Bytes::mib(1), 10.0);
        assert_eq!(c.overhead, 0.0);
    }

    #[test]
    fn recompute_unavailable_falls_back_to_swaps() {
        let m = model();
        let host = m.gpu_cpu_swap(Bytes::mib(500), 0.001);
        let d2d = m.d2d_swap(&plan(Bytes::mib(500)), 0.001);
        let chosen = m.choose(None, host, Some(d2d));
        assert_eq!(chosen.technique, Technique::D2dSwap);
    }
}

//! The rewriter (paper Fig. 5, step 4).
//!
//! MPress Static's rewriter "instruments the input data flow graph to
//! incorporate these assigned strategies in proper places to respect the
//! operator dependencies". This module materializes an
//! [`InstrumentationPlan`] into an explicit instrumented
//! [`TrainingGraph`]: swap-out ops right after each producer, swap-in ops
//! right before each consumer, and drop markers for recomputed
//! activations.
//!
//! The simulator executes directives directly (same semantics, JIT-style),
//! so the rewritten graph is an *inspection artifact*: it shows exactly
//! which operators MPress would splice into the framework's graph, can be
//! serialized, and its validity is machine-checked by the graph builder.

use crate::directive::{HostTier, InstrumentationPlan, MemoryDirective};
use crate::striping::StripePlan;
use mpress_graph::{GraphError, OpId, OpKind, TensorId, TrainingGraph};
use mpress_hw::{Machine, Secs};

/// Statistics of one rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RewriteStats {
    /// Swap-out operators inserted.
    pub swap_outs: usize,
    /// Swap-in operators inserted.
    pub swap_ins: usize,
    /// Drop markers inserted (recomputation).
    pub drops: usize,
}

/// Rewrites `graph` according to `plan`, returning the instrumented graph
/// and insertion statistics.
///
/// Swap ops are placed in each stage's program order immediately after
/// the producer (swap-out) and immediately before the consumer (swap-in),
/// with durations from the machine's channel models; the runtime executes
/// them on copy streams, so program order encodes dependency, not
/// serialization.
///
/// # Errors
///
/// Propagates [`GraphError`] if the instrumented graph fails validation
/// (indicates an inconsistent plan).
pub fn instrument(
    graph: &TrainingGraph,
    plan: &InstrumentationPlan,
    machine: &Machine,
) -> Result<(TrainingGraph, RewriteStats), GraphError> {
    let mut stats = RewriteStats::default();
    let mut b = TrainingGraph::builder(graph.n_stages());

    // Tensors copy over 1:1 (ids preserved).
    for t in graph.tensors() {
        b.add_tensor(t.kind, t.bytes, t.stage, t.layer, t.microbatch);
    }

    // Old op id -> new op id, for cross-dep remapping.
    let mut remap = vec![OpId(0); graph.ops().len()];

    let one_way = |t: TensorId, d: &MemoryDirective| -> Secs {
        let bytes = graph.tensor(t).bytes;
        match d {
            MemoryDirective::SwapToHost(HostTier::Dram) => machine.pcie_transfer_time(bytes),
            MemoryDirective::SwapToHost(HostTier::Nvme) => machine
                .pcie_transfer_time(bytes)
                .max(machine.nvme_transfer_time(bytes, true)),
            MemoryDirective::SwapD2d(stripe) => stripe.one_way_time(),
            MemoryDirective::Recompute => 0.0,
        }
    };

    for stage in 0..graph.n_stages() {
        for &op_id in graph.stage_program(stage) {
            let op = graph.op(op_id);

            // Swap-ins precede any op that reads a swapped tensor it
            // defined-before; drop markers and swap-outs follow producers.
            for &r in &op.reads {
                if let Some(d @ (MemoryDirective::SwapToHost(_) | MemoryDirective::SwapD2d(_))) =
                    plan.get(r)
                {
                    // Only before the first consumer per (tensor, op):
                    // later consumers of statics get their own legs in the
                    // runtime; the artifact shows one per read.
                    b.add_op(OpKind::SwapIn, stage, op.microbatch, one_way(r, d), |o| {
                        o.writes.push(r);
                    });
                    stats.swap_ins += 1;
                }
            }

            // The op itself (ids shift as we insert).
            let new_id = b.add_op(op.kind, op.stage, op.microbatch, op.duration, |o| {
                o.reads = op.reads.clone();
                o.writes = op.writes.clone();
                o.frees = op.frees.clone();
                o.sub_events = op.sub_events.clone();
            });
            remap[op_id.index()] = new_id;

            for &w in &op.writes {
                match plan.get(w) {
                    Some(d @ (MemoryDirective::SwapToHost(_) | MemoryDirective::SwapD2d(_))) => {
                        b.add_op(OpKind::SwapOut, stage, op.microbatch, one_way(w, d), |o| {
                            o.reads.push(w);
                            o.frees.push(w);
                        });
                        stats.swap_outs += 1;
                    }
                    Some(MemoryDirective::Recompute) => {
                        b.add_op(OpKind::Drop, stage, op.microbatch, 0.0, |o| {
                            o.reads.push(w);
                            o.frees.push(w);
                        });
                        stats.drops += 1;
                    }
                    None => {}
                }
            }
        }
    }

    for &(from, to) in graph.cross_deps() {
        b.add_dep(remap[from.index()], remap[to.index()]);
    }

    let rewritten = b.build()?;
    Ok((rewritten, stats))
}

/// Convenience: the stripe plan recorded for a tensor, if it is D2D
/// swapped.
pub fn stripe_of(plan: &InstrumentationPlan, tensor: TensorId) -> Option<&StripePlan> {
    match plan.get(tensor) {
        Some(MemoryDirective::SwapD2d(stripe)) => Some(stripe),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpress_graph::TensorKind;
    use mpress_hw::{Bytes, DeviceId};

    fn base_graph() -> TrainingGraph {
        let mut b = TrainingGraph::builder(1);
        let act = b.add_tensor(TensorKind::Activation, Bytes::mib(64), 0, Some(0), Some(0));
        let act2 = b.add_tensor(TensorKind::Activation, Bytes::mib(64), 0, Some(1), Some(0));
        b.add_op(OpKind::Forward, 0, Some(0), 0.01, |o| {
            o.writes.extend([act, act2]);
        });
        b.add_op(OpKind::Backward, 0, Some(0), 0.02, |o| {
            o.reads.extend([act, act2]);
            o.frees.extend([act, act2]);
        });
        b.build().unwrap()
    }

    #[test]
    fn instruments_swaps_and_drops() {
        let g = base_graph();
        let mut plan = InstrumentationPlan::new();
        plan.assign(TensorId(0), MemoryDirective::SwapToHost(HostTier::Dram));
        plan.assign(TensorId(1), MemoryDirective::Recompute);
        let (rewritten, stats) = instrument(&g, &plan, &Machine::dgx1()).unwrap();
        assert_eq!(stats.swap_outs, 1);
        assert_eq!(stats.swap_ins, 1);
        assert_eq!(stats.drops, 1);
        // 2 original ops + 3 inserted.
        assert_eq!(rewritten.ops().len(), 5);
        // Program order: fwd, swap-out(t0), drop(t1), swap-in(t0), bwd.
        let kinds: Vec<OpKind> = rewritten
            .stage_program(0)
            .iter()
            .map(|&id| rewritten.op(id).kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                OpKind::Forward,
                OpKind::SwapOut,
                OpKind::Drop,
                OpKind::SwapIn,
                OpKind::Backward
            ]
        );
    }

    #[test]
    fn empty_plan_is_identity_modulo_ids() {
        let g = base_graph();
        let (rewritten, stats) =
            instrument(&g, &InstrumentationPlan::new(), &Machine::dgx1()).unwrap();
        assert_eq!(stats, RewriteStats::default());
        assert_eq!(rewritten.ops().len(), g.ops().len());
    }

    #[test]
    fn d2d_swap_duration_uses_stripe_time() {
        let g = base_graph();
        let mut plan = InstrumentationPlan::new();
        let stripe = StripePlan::weighted(Bytes::mib(64), &[(DeviceId(3), 2), (DeviceId(4), 2)]);
        let expect = stripe.one_way_time();
        plan.assign(TensorId(0), MemoryDirective::SwapD2d(stripe));
        let (rewritten, _) = instrument(&g, &plan, &Machine::dgx1()).unwrap();
        let swap_out = rewritten
            .ops()
            .iter()
            .find(|o| o.kind == OpKind::SwapOut)
            .unwrap();
        assert!((swap_out.duration - expect).abs() < 1e-12);
    }

    #[test]
    fn stripe_of_exposes_layout() {
        let mut plan = InstrumentationPlan::new();
        let stripe = StripePlan::single(Bytes::mib(8), DeviceId(1), 1);
        plan.assign(TensorId(0), MemoryDirective::SwapD2d(stripe));
        assert!(stripe_of(&plan, TensorId(0)).is_some());
        assert!(stripe_of(&plan, TensorId(1)).is_none());
    }

    #[test]
    fn cross_deps_survive_remapping() {
        let mut b = TrainingGraph::builder(2);
        let t = b.add_tensor(TensorKind::Activation, Bytes::mib(8), 0, Some(0), Some(0));
        let f0 = b.add_op(OpKind::Forward, 0, Some(0), 0.01, |o| o.writes.push(t));
        let f1 = b.add_op(OpKind::Forward, 1, Some(0), 0.01, |_| {});
        let b0 = b.add_op(OpKind::Backward, 0, Some(0), 0.01, |o| {
            o.reads.push(t);
            o.frees.push(t);
        });
        b.add_dep(f0, f1);
        let _ = b0;
        let g = b.build().unwrap();
        let mut plan = InstrumentationPlan::new();
        plan.assign(TensorId(0), MemoryDirective::SwapToHost(HostTier::Dram));
        let (rewritten, _) = instrument(&g, &plan, &Machine::dgx1()).unwrap();
        assert_eq!(rewritten.cross_deps().len(), 1);
        // The dependency still points from the stage-0 forward to the
        // stage-1 forward after id remapping.
        let (from, to) = rewritten.cross_deps()[0];
        assert_eq!(rewritten.op(from).kind, OpKind::Forward);
        assert_eq!(rewritten.op(from).stage, 0);
        assert_eq!(rewritten.op(to).stage, 1);
    }
}

//! The three memory-reduction techniques.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory-saving technique MPress can assign to a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Drop the activation and re-run its forward computation on demand.
    Recompute,
    /// Round-trip the tensor over PCIe to pinned host memory.
    GpuCpuSwap,
    /// Stripe the tensor over NVLink lanes to peer GPUs with spare memory.
    D2dSwap,
}

impl Technique {
    /// All techniques, in the paper's presentation order.
    pub const ALL: [Technique; 3] = [
        Technique::Recompute,
        Technique::GpuCpuSwap,
        Technique::D2dSwap,
    ];

    /// Whether the technique consumes GPU compute resources (only
    /// recomputation does — the swaps run on copy engines, paper §II-E).
    pub fn consumes_compute(self) -> bool {
        matches!(self, Technique::Recompute)
    }

    /// Whether the technique consumes spare GPU memory on peers.
    pub fn consumes_peer_memory(self) -> bool {
        matches!(self, Technique::D2dSwap)
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technique::Recompute => write!(f, "Recomputation"),
            Technique::GpuCpuSwap => write!(f, "GPU-CPU swap"),
            Technique::D2dSwap => write!(f, "D2D swap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_flags() {
        assert!(Technique::Recompute.consumes_compute());
        assert!(!Technique::GpuCpuSwap.consumes_compute());
        assert!(!Technique::D2dSwap.consumes_compute());
        assert!(Technique::D2dSwap.consumes_peer_memory());
        assert!(!Technique::GpuCpuSwap.consumes_peer_memory());
    }

    #[test]
    fn all_lists_three() {
        assert_eq!(Technique::ALL.len(), 3);
    }
}

//! Umbrella crate for the MPress reproduction workspace.
//!
//! Re-exports every member crate so the examples and cross-crate
//! integration tests have a single dependency root. The real library
//! surface lives in the member crates:
//!
//! * [`mpress`] — the paper's contribution (profiler, planner, device
//!   mapping, system facade),
//! * [`mpress_hw`] / [`mpress_model`] / [`mpress_graph`] /
//!   [`mpress_pipeline`] / [`mpress_sim`] / [`mpress_compaction`] — the
//!   substrates built from scratch for this reproduction,
//! * [`mpress_baselines`] — the ZeRO-family comparison points,
//! * [`mpress_bench`] — the experiment harness regenerating the paper's
//!   tables and figures.

#![forbid(unsafe_code)]

pub use mpress;
pub use mpress_baselines;
pub use mpress_bench;
pub use mpress_compaction;
pub use mpress_graph;
pub use mpress_hw;
pub use mpress_model;
pub use mpress_pipeline;
pub use mpress_sim;

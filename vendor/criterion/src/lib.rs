//! Vendored offline stand-in for the `criterion` benchmark crate.
//!
//! Provides the `Criterion` / `Bencher` surface plus the
//! `criterion_group!` / `criterion_main!` macros that the workspace's
//! `benches/` targets use. Each benchmark runs `sample_size`
//! iterations and prints mean wall time; there is no statistics
//! engine.

use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean = if b.iters > 0 {
            b.elapsed.as_secs_f64() / b.iters as f64
        } else {
            0.0
        };
        println!(
            "bench {name}: {:.3} ms/iter ({} iters)",
            mean * 1e3,
            b.iters
        );
        self
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `samples` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            // A benchmark harness exists to read the wall clock.
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now();
            let out = f();
            self.elapsed += start.elapsed();
            self.iters += 1;
            std::hint::black_box(&out);
        }
    }
}

/// Opaque-to-the-optimizer pass-through, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}

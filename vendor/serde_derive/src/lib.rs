//! Vendored offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal surface it actually uses. This derive
//! handles exactly the shapes present in the codebase: non-generic
//! structs (named, tuple/newtype, unit) and enums (unit, newtype,
//! tuple, struct variants) with no `#[serde(...)]` attributes.
//!
//! `Serialize` expands to a `to_json` tree builder over
//! `serde::Value`; `Deserialize` is a marker impl (the workspace only
//! ever parses into `serde_json::Value`, never into typed data).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored `to_json` form).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("items.push(::serde::Serialize::to_json(&self.{i}));"))
                .collect();
            format!(
                "{{ let mut items = ::std::vec::Vec::new(); {} ::serde::Value::Array(items) }}",
                elems.join(" ")
            )
        }
        ItemKind::NamedStruct(fields) => object_expr(
            fields
                .iter()
                .map(|f| (f.clone(), format!("::serde::Serialize::to_json(&self.{f})"))),
        ),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&variant_arm(&item.name, v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{ fn to_json(&self) -> ::serde::Value {{ {} }} }}",
        item.name, body
    )
    .parse()
    .expect("serde_derive: generated impl must parse")
}

/// Derives `serde::Deserialize` (vendored marker form).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive: generated impl must parse")
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Externally-tagged serialization arm for one enum variant, matching
/// stock serde's JSON representation.
fn variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.body {
        VariantBody::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantBody::Tuple(1) => {
            let inner = "::serde::Serialize::to_json(f0)".to_string();
            format!(
                "{enum_name}::{vname}(f0) => {},",
                tagged_expr(vname, &inner)
            )
        }
        VariantBody::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let pushes: Vec<String> = binds
                .iter()
                .map(|b| format!("items.push(::serde::Serialize::to_json({b}));"))
                .collect();
            let inner = format!(
                "{{ let mut items = ::std::vec::Vec::new(); {} ::serde::Value::Array(items) }}",
                pushes.join(" ")
            );
            format!(
                "{enum_name}::{vname}({}) => {},",
                binds.join(", "),
                tagged_expr(vname, &inner)
            )
        }
        VariantBody::Named(fields) => {
            let inner = object_expr(
                fields
                    .iter()
                    .map(|f| (f.clone(), format!("::serde::Serialize::to_json({f})"))),
            );
            format!(
                "{enum_name}::{vname} {{ {} }} => {},",
                fields.join(", "),
                tagged_expr(vname, &inner)
            )
        }
    }
}

/// `{"<tag>": <inner>}` expression.
fn tagged_expr(tag: &str, inner: &str) -> String {
    format!(
        "{{ let mut pairs = ::std::vec::Vec::new(); \
         pairs.push((::std::string::String::from(\"{tag}\"), {inner})); \
         ::serde::Value::Object(pairs) }}"
    )
}

/// `Value::Object` expression from (key, value-expression) pairs.
fn object_expr(fields: impl Iterator<Item = (String, String)>) -> String {
    let pushes: Vec<String> = fields
        .map(|(name, expr)| {
            format!("pairs.push((::std::string::String::from(\"{name}\"), {expr}));")
        })
        .collect();
    format!(
        "{{ let mut pairs = ::std::vec::Vec::new(); {} ::serde::Value::Object(pairs) }}",
        pushes.join(" ")
    )
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, got {t:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("serde_derive: expected type name, got {t:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored stub");
    }
    let kind = match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            t => panic!("serde_derive: malformed struct body: {t:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            t => panic!("serde_derive: malformed enum body: {t:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes any leading `#[...]` attributes (including doc comments).
fn skip_attributes(it: &mut TokenIter) {
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        it.next(); // the bracketed attribute group
    }
}

/// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(it: &mut TokenIter) {
    if matches!(it.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        it.next();
        if matches!(
            it.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            it.next();
        }
    }
}

/// Field names from a `{ ... }` struct body, skipping attrs, vis, and
/// type annotations (commas inside `<...>` are not field separators).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            None => break,
            t => panic!("serde_derive: expected field name, got {t:?}"),
        }
        skip_past_comma(&mut it);
    }
    fields
}

/// Number of fields in a `( ... )` tuple body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_past_comma(&mut it);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            t => panic!("serde_derive: expected variant name, got {t:?}"),
        };
        let body = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantBody::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantBody::Named(fields)
            }
            _ => VariantBody::Unit,
        };
        variants.push(Variant { name, body });
        skip_past_comma(&mut it);
    }
    variants
}

/// Advances past the next top-level comma (angle-bracket depth 0);
/// stops at end of stream.
fn skip_past_comma(it: &mut TokenIter) {
    let mut angle_depth = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

//! Vendored offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace test-suite uses: the
//! `proptest!` macro over named `#[test]` functions with `arg in
//! strategy` parameters, integer-range and `collection::vec`
//! strategies, `prop_assert*` / `prop_assume!`, and `ProptestConfig {
//! cases }`. Sampling is driven by a deterministic SplitMix64 stream
//! keyed on (test name, case index), so runs are reproducible; there
//! is no shrinking.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of pseudo-random values for one test argument.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_unsigned_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_unsigned_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range!(i8, i16, i32, i64, isize);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Configuration for a `proptest!` block (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test function.
        pub cases: u32,
        /// Accepted for source compatibility with real proptest; the
        /// stub does no shrinking, so the value is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 32,
                max_shrink_iters: 0,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input out; not a failure.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A stream keyed on `(seed, case)` so every case is independent
        /// yet reproducible.
        pub fn new(seed: u64, case: u32) -> Self {
            TestRng {
                state: seed ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 pseudo-random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Per-test driver: hashes the test name into a base seed and hands
    /// out one RNG per case.
    pub struct TestRunner {
        config: ProptestConfig,
        seed: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut seed = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, seed }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn rng_for(&self, case: u32) -> TestRng {
            TestRng::new(self.seed, case)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines a block of property tests. Each `fn name(arg in strategy,
/// ...)` becomes a `#[test]` that runs `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            ::std::panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                case,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &($left);
        let r = &($right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &($left);
        let r = &($right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = &($left);
        let r = &($right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Rejects the current case (not a failure) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Samples stay inside the requested range, deterministically.
        #[test]
        fn ranges_are_respected(x in 3u64..17, n in 1usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..5).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]

        /// Vec strategy honors length bounds.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..3, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 3));
        }
    }

    #[test]
    fn same_name_same_samples() {
        let r1 = crate::test_runner::TestRunner::new(Default::default(), "t");
        let r2 = crate::test_runner::TestRunner::new(Default::default(), "t");
        assert_eq!(r1.rng_for(4).next_u64(), r2.rng_for(4).next_u64());
    }
}

//! Vendored offline stand-in for the `serde_json` crate.
//!
//! Provides the exact surface the workspace uses: `to_string` /
//! `to_string_pretty` over anything implementing the vendored
//! `serde::Serialize`, and `from_str` into a dynamically-typed
//! [`Value`] tree via a small recursive-descent parser.

use std::fmt;

pub use serde::Value;

/// JSON serialization/parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Returns an error when the tree contains a non-finite float.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON text.
///
/// # Errors
///
/// Returns an error when the tree contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an error describing the first syntax problem encountered.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            out.push_str(&format!("{x}"));
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            write_seq(items.len(), indent, depth, '[', ']', out, |i, out| {
                write_value(&items[i], indent, depth + 1, out)
            })?;
        }
        Value::Object(pairs) => {
            write_seq(pairs.len(), indent, depth, '{', '}', out, |i, out| {
                let (k, v) = &pairs[i];
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(v, indent, depth + 1, out)
            })?;
        }
    }
    Ok(())
}

/// Shared bracket/comma/newline layout for arrays and objects.
fn write_seq(
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    out: &mut String,
    mut write_item: impl FnMut(usize, &mut String) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(i, out)?;
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (valid UTF-8 passes through).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"a": [1, -2, 3.5, "x\ny", true, null], "b": {"c": {}}}"#;
        let v = from_str(src).expect("parses");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 6);
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented_and_reparseable() {
        let v = from_str(r#"{"k": [1, 2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n"));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str("[1] x").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
    }
}

//! Vendored offline stand-in for the `serde` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the minimal serialization surface it uses: a `Serialize`
//! trait that lowers values to an owned JSON [`Value`] tree, a
//! `Deserialize` marker trait, and derive macros re-exported from the
//! sibling `serde_derive` stub. The JSON text layer lives in the
//! vendored `serde_json` crate.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value serializable to a JSON tree.
pub trait Serialize {
    /// Lowers `self` to an owned JSON value.
    fn to_json(&self) -> Value;
}

/// Marker trait; the workspace only ever deserializes into
/// [`Value`], never into typed data.
pub trait Deserialize {}

/// An owned JSON document tree.
///
/// Object entries preserve insertion order (like serde_json's
/// `preserve_order` feature); map-typed Rust values are serialized in
/// key order so output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The numeric value if this is any JSON number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere or when missing).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string serde_json would use for this value as a map key.
    /// Integer and string keys are supported (all the workspace needs).
    pub fn as_key_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported JSON map key: {other:?}"),
        }
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_json(&self) -> Value {
        Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_json()),
            ("end".to_string(), self.end.to_json()),
        ])
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_json().as_key_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_json().as_key_string(), v.to_json()))
            .collect();
        // HashMap iteration order is unstable; sort for determinism.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_serialize_with_string_keys_in_order() {
        let mut m = BTreeMap::new();
        m.insert(7u32, "a");
        m.insert(2u32, "b");
        let v = m.to_json();
        assert_eq!(v.get("2").and_then(Value::as_str), Some("b"));
        assert_eq!(v.get("7").and_then(Value::as_str), Some("a"));
    }

    #[test]
    fn option_and_vec_lower_structurally() {
        let v = vec![Some(1u64), None].to_json();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1], Value::Null);
    }
}

#!/usr/bin/env bash
# Full verification gate: formatting, release build, test suite, lint,
# high-worker-count determinism, the telemetry JSON contract, the
# certified-bounds soundness oracle, and the planner/emulator/search/
# service smoke-runs (write BENCH_planner.json, BENCH_sim.json,
# BENCH_search.json, BENCH_serve.json and BENCH_bounds.json at the repo
# root).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (check) =="
cargo fmt --check

echo "== build (release) =="
# --workspace: the root manifest is also the suite package, and a bare
# `cargo build` would skip the member-only binaries (mpress-cli, exp_*).
cargo build --release --workspace

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== determinism source lints (mpress-lint) =="
# Token-level wall-clock / hash-container / panic-site lints over the
# workspace sources, ratcheted by lint_allowlist.txt (counts may only
# go down; regenerate with `mpress-lint --update`).
./target/release/mpress-lint --root .

echo "== static plan verifier (mpress-cli check) =="
# The planner's chosen plan must verify clean on a pressured job, and
# the --json document must round-trip through the JSON parser.
./target/release/mpress-cli check --model bert-1.67b --json \
    | ./target/release/json_roundtrip_check
./target/release/mpress-cli check --model gpt-10.3b --machine dgx2 --json \
    | ./target/release/json_roundtrip_check
# --bounds nests the certified-bounds document next to the report; the
# combined document must still round-trip.
./target/release/mpress-cli check --model bert-1.67b --bounds --json \
    | ./target/release/json_roundtrip_check

echo "== certified-bounds soundness oracle (exp_bench_bounds) =="
# Zoo x {DGX-1, DGX-2} x five directive mutations per case: every
# emulated makespan and per-device peak must lie inside its certified
# interval, certified-oom must be confirmed by the engine, and
# certified-fit forbids device-pool OOM. Exits nonzero on any escape.
./target/release/exp_bench_bounds --out BENCH_bounds.json

echo "== determinism at MPRESS_JOBS=8 =="
# The jobs=1 vs jobs=4 contract is in the suite; re-check the planner and
# telemetry fingerprints under a wider pool than CI's default.
MPRESS_JOBS=8 cargo test -q --test determinism

echo "== telemetry JSON round trip =="
# `train --metrics=json` must emit a single machine-readable document.
./target/release/mpress-cli train --model bert-1.67b --metrics=json \
    | ./target/release/json_roundtrip_check

echo "== planner timing smoke-run =="
# jobs from MPRESS_JOBS if set, else auto-detected; the JSON records the
# effective value alongside wall-clock and cache counters.
./target/release/exp_bench_planner --out BENCH_planner.json

echo "== emulator fast-path smoke-run =="
# Steady-state emulation throughput, delta-replay speedups, plan wall at
# jobs=1/8, and three hard gates (each exits nonzero on failure): the
# prefilter transparency gate, the delta identity gate (every delta
# replay byte-identical to its from-scratch run), and the jobs=8 wall
# sanity gate. --min-eps pins from-scratch throughput to a generous
# fraction of the checked-in baseline — wall clocks on small shared
# boxes swing ~2x, so this only catches order-of-magnitude regressions.
min_eps=$(awk -F'"emulations_per_sec": ' '{split($2, a, ","); printf "%.0f", a[1] * 0.3}' BENCH_sim.json)
./target/release/exp_bench_sim --out BENCH_sim.json --min-eps "${min_eps:-0}"

echo "== speculative search scaling (exp_bench_search) =="
# Plans the widened explore grid at jobs=1 and jobs=8 (pool clamp
# lifted, so the wide run oversubscribes even this box) and exits
# nonzero if the two plans differ. The JSON must round-trip, stealing
# and the bound-abort path must both have fired, and on hosts with >= 8
# cores the wide wall must come in at <= 0.6x the jobs=1 wall. The
# scaling gate is conditional: the 1-core reference container cannot
# demonstrate parallel speedup, so the binary records
# "skipped: N cores" there and only an explicit "fail" is an error.
./target/release/exp_bench_search --out BENCH_search.json
./target/release/json_roundtrip_check < BENCH_search.json
grep -q '"deterministic": true' BENCH_search.json
grep -q '"steals": 0,' BENCH_search.json && { echo "error: no steals recorded"; exit 1; }
grep -q '"bound_aborts": 0,' BENCH_search.json && { echo "error: no bound aborts recorded"; exit 1; }
grep -q '"scaling_gate": "fail"' BENCH_search.json && { echo "error: jobs=8 wall exceeded 0.6x jobs=1"; exit 1; }

echo "== planning-service smoke-run (mpress-serve) =="
# Boot the daemon through the real CLI entry point, then drive it with
# the deterministic load generator: 4 clients, 240 mixed requests. The
# generator exits nonzero unless every response is byte-identical to
# local execution, the process-global plan cache reports hits, and the
# daemon counted zero protocol errors. --shutdown stops the daemon when
# done; `wait` confirms it exits cleanly. The p99 gate is generous —
# wall clocks on small shared boxes swing, so it only catches hangs.
./target/release/mpress-cli serve --addr 127.0.0.1:7077 &
serve_pid=$!
for _ in $(seq 1 50); do
    if ./target/release/mpress-cli client --addr 127.0.0.1:7077 --kind stats \
        >/dev/null 2>&1; then break; fi
    sleep 0.1
done
./target/release/exp_bench_serve --addr 127.0.0.1:7077 --shutdown \
    --max-p99-ms 5000 --out BENCH_serve.json
wait "$serve_pid"

#!/usr/bin/env bash
# Full verification gate: release build, test suite, lint, and the
# planner timing smoke-run (writes BENCH_planner.json at the repo root).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests =="
cargo test -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== planner timing smoke-run =="
# jobs from MPRESS_JOBS if set, else auto-detected; the JSON records the
# effective value alongside wall-clock and cache counters.
./target/release/exp_bench_planner --out BENCH_planner.json

//! Cross-crate integration tests asserting the paper's *qualitative*
//! results — who OOMs where and who wins — at full paper scale.
//!
//! These exercise the whole stack: model sizing → partitioning →
//! lowering → profiling → planning → discrete-event simulation.

use mpress::{Mpress, OptimizationSet, PlannerConfig};
use mpress_hw::Machine;
use mpress_model::{zoo, PrecisionPolicy};
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn bert(model: mpress_model::TransformerConfig) -> PipelineJob {
    PipelineJob::builder()
        .model(model)
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::PipeDream)
        .microbatch_size(12)
        .microbatches(16)
        .precision(PrecisionPolicy::full())
        .build()
        .unwrap()
}

fn gpt(model: mpress_model::TransformerConfig, machine: Machine) -> PipelineJob {
    PipelineJob::builder()
        .model(model)
        .machine(machine)
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(16)
        .precision(PrecisionPolicy::mixed())
        .build()
        .unwrap()
}

fn run(job: PipelineJob, opts: OptimizationSet) -> Option<f64> {
    let r = Mpress::builder()
        .job(job)
        .optimizations(opts)
        .build()
        .train()
        .unwrap();
    r.succeeded().then_some(r.tflops)
}

fn run_plain(job: PipelineJob) -> Option<f64> {
    let r = Mpress::builder()
        .job(job)
        .optimizations(OptimizationSet::none())
        .build()
        .train_unmodified()
        .unwrap();
    r.succeeded().then_some(r.tflops)
}

/// Fig. 7 "small size": everything fits, every system reports the same
/// number.
#[test]
fn bert_0_35b_all_systems_identical() {
    let plain = run_plain(bert(zoo::bert_0_35b())).expect("plain fits 0.35B");
    let mpress = run(bert(zoo::bert_0_35b()), OptimizationSet::all()).expect("mpress fits");
    assert!((plain - mpress).abs() / plain < 1e-9, "{plain} vs {mpress}");
}

/// Fig. 7 "medium size": PipeDream OOMs at 0.64B; D2D swap alone rescues
/// it and beats both recomputation and GPU-CPU swap.
#[test]
fn bert_0_64b_medium_size_story() {
    assert!(
        run_plain(bert(zoo::bert_0_64b())).is_none(),
        "0.64B must OOM plain"
    );
    let d2d = run(bert(zoo::bert_0_64b()), OptimizationSet::d2d_only())
        .expect("D2D alone sustains 0.64B");
    let rec = run(bert(zoo::bert_0_64b()), OptimizationSet::recompute_only())
        .expect("recompute sustains 0.64B");
    let mpress = run(bert(zoo::bert_0_64b()), OptimizationSet::all()).expect("mpress");
    assert!(d2d >= rec, "D2D ({d2d}) must beat recomputation ({rec})");
    assert!(
        mpress >= rec,
        "MPress ({mpress}) must beat recomputation ({rec})"
    );
}

/// Fig. 7 GPU-CPU swap baseline loses badly at 0.64B (paper: 67% below
/// ideal; recomputation beats it by ~143%).
#[test]
fn bert_0_64b_gpu_cpu_swap_is_slow() {
    let mut cfg = PlannerConfig::default();
    cfg.optimizations = OptimizationSet::host_swap_only();
    cfg.exhaustive_swap = true;
    let swap = Mpress::builder()
        .job(bert(zoo::bert_0_64b()))
        .planner_config(cfg)
        .build()
        .train()
        .unwrap();
    assert!(swap.succeeded());
    let rec = run(bert(zoo::bert_0_64b()), OptimizationSet::recompute_only()).unwrap();
    assert!(
        rec > swap.tflops * 1.1,
        "recompute {rec} must clearly beat naive swap {}",
        swap.tflops
    );
}

/// Fig. 7 "large size": stand-alone D2D runs out of donors at 1.67B, but
/// full MPress outperforms recomputation.
#[test]
fn bert_1_67b_large_size_story() {
    assert!(
        run(bert(zoo::bert_1_67b()), OptimizationSet::d2d_only()).is_none(),
        "D2D alone must fail at 1.67B"
    );
    let rec = run(bert(zoo::bert_1_67b()), OptimizationSet::recompute_only())
        .expect("recompute sustains 1.67B");
    let mpress = run(bert(zoo::bert_1_67b()), OptimizationSet::all()).expect("mpress");
    assert!(
        mpress > rec,
        "MPress ({mpress}) must beat recomputation ({rec})"
    );
}

/// Fig. 7 "extra-large": recomputation cannot save non-activation data, so
/// it dies before GPU-CPU swap and MPress do.
#[test]
fn bert_6_2b_only_swapping_systems_survive() {
    assert!(
        run(bert(zoo::bert_6_2b()), OptimizationSet::recompute_only()).is_none(),
        "recomputation must fail at 6.2B"
    );
    let mpress = run(bert(zoo::bert_6_2b()), OptimizationSet::all());
    assert!(mpress.is_some(), "MPress must sustain Bert-6.2B");
}

/// Fig. 8: DAPPLE alone cannot scale past 5.3B on DGX-1; MPress holds
/// through 20.4B and beats DAPPLE+Recomputation where both run.
#[test]
fn gpt_dgx1_scaling_story() {
    assert!(run_plain(gpt(zoo::gpt_5_3b(), Machine::dgx1())).is_some());
    assert!(run_plain(gpt(zoo::gpt_10_3b(), Machine::dgx1())).is_none());
    let rec = run(
        gpt(zoo::gpt_10_3b(), Machine::dgx1()),
        OptimizationSet::recompute_only(),
    )
    .expect("recompute sustains 10.3B");
    let mpress = run(
        gpt(zoo::gpt_10_3b(), Machine::dgx1()),
        OptimizationSet::all(),
    )
    .expect("mpress sustains 10.3B");
    // Both planners are approximate; MPress must at least match the
    // recomputation baseline to within emulator noise (the paper reports
    // a 19.2% win on real hardware).
    assert!(
        mpress >= rec * 0.98,
        "mpress {mpress:.1} vs recompute {rec:.1}"
    );
    assert!(
        run(
            gpt(zoo::gpt_20_4b(), Machine::dgx1()),
            OptimizationSet::all()
        )
        .is_some(),
        "MPress must sustain GPT-20.4B on DGX-1"
    );
}

/// Fig. 8b: the A100 server more than doubles DGX-1 throughput and holds
/// the largest 25.5B variant under MPress.
#[test]
fn gpt_dgx2_scaling_story() {
    let dgx1 = run(
        gpt(zoo::gpt_5_3b(), Machine::dgx1()),
        OptimizationSet::all(),
    )
    .unwrap();
    let dgx2 = run(
        gpt(zoo::gpt_5_3b(), Machine::dgx2()),
        OptimizationSet::all(),
    )
    .unwrap();
    assert!(dgx2 > 2.0 * dgx1, "DGX-2 {dgx2} vs DGX-1 {dgx1}");
    assert!(
        run(
            gpt(zoo::gpt_25_5b(), Machine::dgx2()),
            OptimizationSet::all()
        )
        .is_some(),
        "MPress must sustain GPT-25.5B on DGX-2"
    );
}

/// Fig. 2: simulated per-device peaks reproduce the early-stage memory
/// imbalance.
#[test]
fn memory_imbalance_shape() {
    let job = bert(zoo::bert_1_67b());
    let lowered = job.lower().unwrap();
    let profile = mpress::Profile::collect(job.machine(), &job, &lowered).unwrap();
    let peaks = &profile.baseline.device_peak;
    assert!(peaks[0] > peaks[7]);
    let ratio = peaks[0].as_f64() / peaks[7].as_f64();
    assert!((2.0..12.0).contains(&ratio), "imbalance ratio {ratio:.1}");
}

#[test]
fn motivation_story_interop_beats_intraop_off_the_dgx() {
    // §I/§II: intra-operator parallelism (Megatron TP-8) balances memory
    // but pays per-layer collectives; on a commodity PCIe-only server
    // those collectives are ruinous, while inter-op + MPress keeps its
    // NVLink-free techniques (recompute, host swap) and its throughput.
    use mpress_baselines::MegatronBaseline;

    let machine = Machine::commodity();
    let megatron = MegatronBaseline::new(machine.clone(), zoo::gpt_10_3b())
        .microbatch_size(2)
        .microbatches(16)
        .report();
    assert!(megatron.fits, "TP-8 shards 10.3B fine");

    let mpress = run(gpt(zoo::gpt_10_3b(), machine), OptimizationSet::all())
        .expect("MPress must survive 10.3B without NVLink");
    assert!(
        mpress > 2.0 * megatron.tflops,
        "inter-op {mpress:.1} vs intra-op {:.1} on PCIe-only",
        megatron.tflops
    );

    // On the DGX-1 the gap narrows but inter-op + MPress still leads.
    let mega_dgx = MegatronBaseline::new(Machine::dgx1(), zoo::gpt_10_3b())
        .microbatch_size(2)
        .microbatches(16)
        .report();
    let mpress_dgx = run(
        gpt(zoo::gpt_10_3b(), Machine::dgx1()),
        OptimizationSet::all(),
    )
    .unwrap();
    assert!(mpress_dgx > mega_dgx.tflops);
}

//! Cross-crate tests for the planning service: the versioned wire API
//! (`mpress-api`) and the daemon (`mpress-serve`).
//!
//! Three contracts anchor the service design:
//!
//! * **Byte identity** — a daemon response body for a request is
//!   byte-identical to the CLI's `--json` output for the same request,
//!   whether the plan came from a cold search, the process-global plan
//!   cache, or in-wave dedup. This is what makes the daemon a drop-in
//!   back end for existing tooling.
//! * **Versioned compatibility** — `v1` decoders tolerate unknown
//!   fields (additive evolution) but reject foreign major versions
//!   loudly rather than misinterpreting them.
//! * **Admission control** — a full queue rejects with an explicit
//!   `overloaded` error while `stats`/`shutdown` (served inline on the
//!   connection thread) keep working.

use mpress_api::{PlanRequest, Request, ServeError};
use mpress_serve::{Client, ServeConfig};
use serde_json::Value;

fn start_server(config: ServeConfig) -> mpress_serve::ServerHandle {
    mpress_serve::start(config).expect("daemon binds an ephemeral port")
}

fn plan_request() -> Request {
    Request::Plan(PlanRequest::new("bert-0.64b").microbatches(8))
}

fn body_bytes(client: &mut Client, req: &Request) -> String {
    let decoded = client.request(req).expect("roundtrip succeeds");
    let (_, body) = decoded.result.expect("request succeeds");
    serde_json::to_string(&body).expect("body reserializes")
}

#[test]
fn daemon_response_is_byte_identical_to_cli_json() {
    let mut server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connects");
    let daemon_body = body_bytes(&mut client, &plan_request());

    let cli_args: Vec<String> = [
        "plan",
        "--model",
        "bert-0.64b",
        "--microbatches",
        "8",
        "--json",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let cli_out = mpress_cli::run(&cli_args).expect("CLI plan succeeds");
    assert_eq!(
        format!("{daemon_body}\n"),
        cli_out,
        "daemon body and CLI --json output must be the same bytes"
    );
    server.shutdown();
}

#[test]
fn concurrent_identical_clients_get_identical_bytes_and_cache_hits() {
    let mut server = start_server(ServeConfig::default());
    let addr = server.addr();
    let bodies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connects");
                    // Two identical requests per client: the repeats
                    // must come from the plan cache or in-wave dedup.
                    let first = body_bytes(&mut client, &plan_request());
                    let second = body_bytes(&mut client, &plan_request());
                    assert_eq!(first, second, "repeat on one connection diverged");
                    first
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "responses diverged across clients"
    );

    let mut client = Client::connect(addr).expect("connects");
    let decoded = client.request(&Request::Stats).expect("stats roundtrip");
    let (_, stats) = decoded.result.expect("stats succeeds");
    let hits = stats
        .get("cache")
        .and_then(|c| c.get("plan_hits"))
        .and_then(Value::as_u64)
        .expect("stats body carries cache.plan_hits");
    let dedup = stats
        .get("service")
        .and_then(|s| s.get("counters"))
        .and_then(|c| c.get("serve.dedup_hits"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(
        hits + dedup >= 7,
        "8 identical requests must share one plan (hits {hits}, dedup {dedup})"
    );
    server.shutdown();
}

#[test]
fn wrong_major_version_is_rejected_unknown_fields_are_not() {
    let mut server = start_server(ServeConfig::default());
    let mut client = Client::connect(server.addr()).expect("connects");

    // A v2 envelope is refused with the dedicated code.
    client
        .send_raw(r#"{"v":2,"id":7,"kind":"plan","body":{"model":"bert-0.64b"}}"#)
        .expect("send");
    let decoded = client.recv().expect("decodable error response");
    assert_eq!(decoded.id, 7, "errors echo the request id");
    assert_eq!(decoded.result.unwrap_err().code(), "unsupported_version");

    // Unknown fields anywhere in a v1 document are ignored: this is the
    // documented additive-evolution path.
    client
        .send_raw(
            r#"{"v":1,"id":8,"kind":"plan","future_envelope_flag":true,
                "body":{"model":"bert-0.64b","microbatches":8,"carbon_budget":12}}"#
                .replace('\n', " ")
                .as_str(),
        )
        .expect("send");
    let decoded = client.recv().expect("decodable response");
    assert_eq!(decoded.id, 8);
    let (kind, body) = decoded.result.expect("unknown fields must not fail");
    assert_eq!(kind, "plan");
    assert_eq!(body.get("v").and_then(Value::as_u64), Some(1));

    // Unknown kinds and unparseable lines have distinct, stable codes.
    client
        .send_raw(r#"{"v":1,"id":9,"kind":"frobnicate"}"#)
        .expect("send");
    assert_eq!(
        client.recv().expect("response").result.unwrap_err().code(),
        "unknown_kind"
    );
    client.send_raw("not json at all").expect("send");
    assert_eq!(
        client.recv().expect("response").result.unwrap_err().code(),
        "protocol"
    );
    server.shutdown();
}

#[test]
fn full_queue_overloads_but_stats_and_shutdown_stay_inline() {
    // queue_cap 0: admission rejects every plannable request.
    let mut server = start_server(ServeConfig::default().queue_cap(0));
    let mut client = Client::connect(server.addr()).expect("connects");

    let decoded = client.request(&plan_request()).expect("roundtrip");
    match decoded.result {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected overloaded rejection, got {other:?}"),
    }

    // Inline kinds are unaffected by the full queue.
    let stats = client.request(&Request::Stats).expect("stats roundtrip");
    let (kind, _) = stats.result.expect("stats succeeds");
    assert_eq!(kind, "stats");

    let ack = client.request(&Request::Shutdown).expect("shutdown ack");
    let (kind, _) = ack.result.expect("shutdown succeeds");
    assert_eq!(kind, "shutdown");
    // The daemon stops on its own after the ack.
    server.wait();
}

#[test]
fn cancelled_shutdown_answers_queued_requests() {
    // batch_cap 1 with a multi-entry queue: shut down while work is
    // queued and confirm every request still gets *an* answer (either a
    // result or an internal shutdown error) instead of a hang.
    let mut server = start_server(ServeConfig::default().batch_cap(1));
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connects");
    let id_a = client.send(&plan_request()).expect("send a");
    let id_b = client
        .send(&Request::Train(
            PlanRequest::new("bert-0.35b").microbatches(8),
        ))
        .expect("send b");
    let mut shutdown_client = Client::connect(addr).expect("connects");
    let ack = shutdown_client
        .request(&Request::Shutdown)
        .expect("shutdown ack");
    assert!(ack.result.is_ok());

    let mut answered = std::collections::BTreeSet::new();
    for _ in 0..2 {
        // Either outcome is legal; silence (an Io error) is not.
        match client.recv() {
            Ok(decoded) => {
                answered.insert(decoded.id);
            }
            Err(ServeError::Io(_)) => break,
            Err(other) => panic!("unexpected protocol failure: {other}"),
        }
    }
    // At least the first request (already admitted before shutdown) is
    // answered; both ids must be from our requests when present.
    for id in &answered {
        assert!([id_a, id_b].contains(id), "unexpected response id {id}");
    }
    server.shutdown();
}

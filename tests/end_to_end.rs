//! End-to-end invariants of the plan → simulate pipeline.

use mpress::{Mpress, OptimizationSet, PlannerConfig};
use mpress_compaction::Technique;
use mpress_hw::{Bytes, Machine};
use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn pressured_job() -> PipelineJob {
    // Big enough to overflow a V100, small enough to plan quickly.
    PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(32)
                .hidden(4096)
                .seq_len(1024)
                .build(),
        )
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(16)
        .precision(PrecisionPolicy::mixed())
        .build()
        .unwrap()
}

#[test]
fn plan_validates_against_its_graph() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let (plan, lowered) = mpress.plan().unwrap();
    assert!(plan.instrumentation.validate(&lowered.graph).is_ok());
    assert!(!plan.instrumentation.is_empty(), "pressured job needs a plan");
}

#[test]
fn planning_is_deterministic() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let (p1, _) = mpress.plan().unwrap();
    let (p2, _) = mpress.plan().unwrap();
    assert_eq!(p1.device_map, p2.device_map);
    assert_eq!(p1.instrumentation, p2.instrumentation);
}

#[test]
fn savings_account_for_every_directive() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let (plan, lowered) = mpress.plan().unwrap();
    let savings = plan.savings(&lowered);
    let by_sum: Bytes = savings.values().copied().sum();
    let by_iter: Bytes = plan
        .instrumentation
        .iter()
        .map(|(t, _)| lowered.graph.tensor(t).bytes)
        .sum();
    assert_eq!(by_sum, by_iter);
}

#[test]
fn simulated_peaks_respect_capacity_when_successful() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let report = mpress.train().unwrap();
    assert!(report.succeeded());
    let cap = mpress.machine().gpu().usable_memory();
    for (dev, peak) in report.sim.device_peak.iter().enumerate() {
        assert!(*peak <= cap, "device {dev} peaked at {peak} over {cap}");
    }
}

#[test]
fn mpress_never_loses_to_its_own_restricted_variants() {
    // With every technique available, the emulator-driven planner must do
    // at least as well as the best single-technique plan it could emit.
    let all = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::all())
        .build()
        .train()
        .unwrap();
    assert!(all.succeeded());
    let rec = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::recompute_only())
        .build()
        .train()
        .unwrap();
    if rec.succeeded() {
        assert!(
            all.tflops >= rec.tflops * 0.98,
            "mpress {:.1} vs recompute-only {:.1}",
            all.tflops,
            rec.tflops
        );
    }
}

#[test]
fn d2d_budget_is_respected_by_importers() {
    // After a successful MPress run, importer devices must stay within
    // capacity too (their donated spare was budgeted by the planner).
    let mpress = Mpress::builder().job(pressured_job()).build();
    let report = mpress.train().unwrap();
    assert!(report.succeeded());
    if report
        .plan
        .savings_has(Technique::D2dSwap)
    {
        assert!(report.sim.d2d_traffic > Bytes::ZERO);
    }
}

/// Helper trait so the test reads naturally.
trait SavingsHas {
    fn savings_has(&self, tech: Technique) -> bool;
}

impl SavingsHas for mpress::MpressPlan {
    fn savings_has(&self, tech: Technique) -> bool {
        self.instrumentation
            .iter()
            .any(|(_, d)| d.technique() == tech)
    }
}

#[test]
fn exhaustive_swap_saves_more_but_runs_slower_or_equal() {
    let smart = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::host_swap_only())
        .build()
        .train()
        .unwrap();
    let naive = Mpress::builder()
        .job(pressured_job())
        .planner_config(PlannerConfig {
            optimizations: OptimizationSet::host_swap_only(),
            exhaustive_swap: true,
            ..PlannerConfig::default()
        })
        .build()
        .train()
        .unwrap();
    if smart.succeeded() && naive.succeeded() {
        assert!(naive.sim.host_traffic >= smart.sim.host_traffic);
    }
}

#[test]
fn restricted_variants_only_use_their_allowed_techniques() {
    // Regression: `best_static_choice` once read the planner's *configured*
    // optimization set instead of the portfolio variant being planned, so
    // a recompute-only plan could silently contain host swaps (and the
    // portfolio guarantee quietly evaporated).
    let cases = [
        (
            OptimizationSet::recompute_only(),
            vec![Technique::Recompute],
        ),
        (
            OptimizationSet::host_swap_only(),
            vec![Technique::GpuCpuSwap],
        ),
        (OptimizationSet::d2d_only(), vec![Technique::D2dSwap]),
        (
            OptimizationSet {
                recompute: true,
                host_swap: true,
                d2d: false,
            },
            vec![Technique::Recompute, Technique::GpuCpuSwap],
        ),
    ];
    for (opts, allowed) in cases {
        let mpress = Mpress::builder()
            .job(pressured_job())
            .optimizations(opts)
            .build();
        let (plan, _) = mpress.plan().unwrap();
        for (t, d) in plan.instrumentation.iter() {
            assert!(
                allowed.contains(&d.technique()),
                "{opts:?} plan assigned {:?} to {t}",
                d.technique()
            );
        }
    }
}

#[test]
fn plan_with_nothing_enabled_is_empty() {
    let mpress = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::none())
        .build();
    let (plan, _) = mpress.plan().unwrap();
    assert!(plan.instrumentation.is_empty());
}

//! End-to-end invariants of the plan → simulate pipeline.

use mpress::{Mpress, OptimizationSet, PlannerConfig};
use mpress_compaction::Technique;
use mpress_hw::{Bytes, Machine};
use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn pressured_job() -> PipelineJob {
    // Big enough to overflow a V100, small enough to plan quickly.
    PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(32)
                .hidden(4096)
                .seq_len(1024)
                .build(),
        )
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(16)
        .precision(PrecisionPolicy::mixed())
        .build()
        .unwrap()
}

#[test]
fn plan_validates_against_its_graph() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let (plan, lowered) = mpress.plan().unwrap();
    assert!(plan.instrumentation.validate(&lowered.graph).is_ok());
    assert!(
        !plan.instrumentation.is_empty(),
        "pressured job needs a plan"
    );
}

#[test]
fn planning_is_deterministic() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let (p1, _) = mpress.plan().unwrap();
    let (p2, _) = mpress.plan().unwrap();
    assert_eq!(p1.device_map, p2.device_map);
    assert_eq!(p1.instrumentation, p2.instrumentation);
}

#[test]
fn savings_account_for_every_directive() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let (plan, lowered) = mpress.plan().unwrap();
    let savings = plan.savings(&lowered);
    let by_sum: Bytes = savings.values().copied().sum();
    let by_iter: Bytes = plan
        .instrumentation
        .iter()
        .map(|(t, _)| lowered.graph.tensor(t).bytes)
        .sum();
    assert_eq!(by_sum, by_iter);
}

#[test]
fn simulated_peaks_respect_capacity_when_successful() {
    let mpress = Mpress::builder().job(pressured_job()).build();
    let report = mpress.train().unwrap();
    assert!(report.succeeded());
    let cap = mpress.machine().gpu().usable_memory();
    for (dev, peak) in report.sim.device_peak.iter().enumerate() {
        assert!(*peak <= cap, "device {dev} peaked at {peak} over {cap}");
    }
}

#[test]
fn mpress_never_loses_to_its_own_restricted_variants() {
    // With every technique available, the emulator-driven planner must do
    // at least as well as the best single-technique plan it could emit.
    let all = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::all())
        .build()
        .train()
        .unwrap();
    assert!(all.succeeded());
    let rec = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::recompute_only())
        .build()
        .train()
        .unwrap();
    if rec.succeeded() {
        assert!(
            all.tflops >= rec.tflops * 0.98,
            "mpress {:.1} vs recompute-only {:.1}",
            all.tflops,
            rec.tflops
        );
    }
}

#[test]
fn d2d_budget_is_respected_by_importers() {
    // After a successful MPress run, importer devices must stay within
    // capacity too (their donated spare was budgeted by the planner).
    let mpress = Mpress::builder().job(pressured_job()).build();
    let report = mpress.train().unwrap();
    assert!(report.succeeded());
    if report.plan.savings_has(Technique::D2dSwap) {
        assert!(report.sim.d2d_traffic > Bytes::ZERO);
    }
}

/// Helper trait so the test reads naturally.
trait SavingsHas {
    fn savings_has(&self, tech: Technique) -> bool;
}

impl SavingsHas for mpress::MpressPlan {
    fn savings_has(&self, tech: Technique) -> bool {
        self.instrumentation
            .iter()
            .any(|(_, d)| d.technique() == tech)
    }
}

#[test]
fn exhaustive_swap_saves_more_but_runs_slower_or_equal() {
    let smart = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::host_swap_only())
        .build()
        .train()
        .unwrap();
    let mut naive_cfg = PlannerConfig::default();
    naive_cfg.optimizations = OptimizationSet::host_swap_only();
    naive_cfg.exhaustive_swap = true;
    let naive = Mpress::builder()
        .job(pressured_job())
        .planner_config(naive_cfg)
        .build()
        .train()
        .unwrap();
    if smart.succeeded() && naive.succeeded() {
        assert!(naive.sim.host_traffic >= smart.sim.host_traffic);
    }
}

#[test]
fn restricted_variants_only_use_their_allowed_techniques() {
    // Regression: `best_static_choice` once read the planner's *configured*
    // optimization set instead of the portfolio variant being planned, so
    // a recompute-only plan could silently contain host swaps (and the
    // portfolio guarantee quietly evaporated).
    let cases = [
        (
            OptimizationSet::recompute_only(),
            vec![Technique::Recompute],
        ),
        (
            OptimizationSet::host_swap_only(),
            vec![Technique::GpuCpuSwap],
        ),
        (OptimizationSet::d2d_only(), vec![Technique::D2dSwap]),
        (
            OptimizationSet {
                recompute: true,
                host_swap: true,
                d2d: false,
            },
            vec![Technique::Recompute, Technique::GpuCpuSwap],
        ),
    ];
    for (opts, allowed) in cases {
        let mpress = Mpress::builder()
            .job(pressured_job())
            .optimizations(opts)
            .build();
        let (plan, _) = mpress.plan().unwrap();
        for (t, d) in plan.instrumentation.iter() {
            assert!(
                allowed.contains(&d.technique()),
                "{opts:?} plan assigned {:?} to {t}",
                d.technique()
            );
        }
    }
}

#[test]
fn plan_with_nothing_enabled_is_empty() {
    let mpress = Mpress::builder()
        .job(pressured_job())
        .optimizations(OptimizationSet::none())
        .build();
    let (plan, _) = mpress.plan().unwrap();
    assert!(plan.instrumentation.is_empty());
}

/// The paper's Bert-1.67B/PipeDream/DGX-1 cell with telemetry on: every
/// compute second of every device is either busy or attributed to exactly
/// one stall cause, so per device `busy.compute + stalls.total()` must
/// telescope to the makespan.
#[test]
fn telemetry_stall_attribution_tiles_the_makespan() {
    let report = Mpress::builder()
        .job(mpress_bench::jobs::bert_job(
            mpress_model::zoo::bert_1_67b(),
            Machine::dgx1(),
        ))
        .metrics(true)
        .build()
        .train()
        .unwrap();
    assert!(report.succeeded());
    let telemetry = report.metrics.expect("metrics were enabled");
    let sim = telemetry.sim.expect("training run simulates");
    assert_eq!(sim.devices.len(), 8, "DGX-1 has eight GPUs");
    let tolerance = 1e-9 * sim.total_time.max(1.0);
    assert!(
        sim.stall_invariant_error() < tolerance,
        "stall attribution leaks {} s (makespan {} s)",
        sim.stall_invariant_error(),
        sim.total_time,
    );
    // A compacted Bert run moves memory, so link accounting cannot be
    // empty, and occupancies are well-formed fractions.
    assert!(!sim.links.is_empty());
    for l in &sim.links {
        assert!((0.0..=1.0).contains(&l.occupancy), "{:?}", l);
        assert!(l.busy >= 0.0 && l.bytes > Bytes::ZERO, "{:?}", l);
    }
    // Search telemetry rode along with the same report.
    assert!(telemetry.search.emulator_runs > 0);
}

/// The telemetry document is serde-stable: serialize → parse → serialize
/// is a fixed point (the CLI's `--metrics=json` depends on this).
#[test]
fn telemetry_report_round_trips_through_json() {
    let report = Mpress::builder()
        .job(pressured_job())
        .metrics(true)
        .build()
        .train()
        .unwrap();
    let telemetry = report.metrics.expect("metrics were enabled");
    let json = serde_json::to_string_pretty(&telemetry).unwrap();
    let first: serde_json::Value = serde_json::from_str(&json).unwrap();
    let again = serde_json::to_string(&first).unwrap();
    let second: serde_json::Value = serde_json::from_str(&again).unwrap();
    assert_eq!(first, second);
}

#[test]
fn prefilter_is_transparent_to_plan_choice() {
    // The analytic lower-bound prefilter may only skip emulations whose
    // outcome could not have changed the search: with it on, the chosen
    // plan must be identical, while the emulator runs strictly fewer
    // windows. Bounds are held off on both arms — the certified-bounds
    // gate supersedes the prefilter when enabled, so its skips would
    // land in `bounds_pruned` instead.
    let plan_at = |prefilter: bool| {
        let mpress = Mpress::builder()
            .job(mpress_bench::jobs::bert_job(
                mpress_model::zoo::bert_1_67b(),
                Machine::dgx1(),
            ))
            .prefilter(prefilter)
            .bounds(false)
            .build();
        let (plan, _) = mpress.plan().unwrap();
        plan
    };
    let off = plan_at(false);
    let on = plan_at(true);
    assert_eq!(on.instrumentation, off.instrumentation);
    assert_eq!(on.device_map, off.device_map);
    assert_eq!(off.search.prefilter_skips, 0);
    assert!(
        on.search.prefilter_skips > 0,
        "prefilter never fired: {:?}",
        on.search
    );
    assert!(
        on.search.emulator_runs < off.search.emulator_runs,
        "prefilter saved no emulator runs: {:?} vs {:?}",
        on.search,
        off.search
    );
}

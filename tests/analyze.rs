//! Cross-crate tests for the static plan verifier (`mpress-analyze`).
//!
//! Two properties anchor the verifier's design:
//!
//! * **Soundness** — every plan the planner emits, across the whole
//!   model zoo on both NVLink machines, verifies clean. This is what
//!   lets the planner hook reject structural errors without ever
//!   changing a chosen plan.
//! * **Sensitivity** — seeded mutations of a *real* planner plan
//!   (retargeted stripes, bogus recomputes, wrong-size maps) each
//!   produce their exact `MP0xx` code, so the codes are usable as a
//!   stable contract by tooling and CI.

use mpress::Mpress;
use mpress_analyze::{check_plan, BoundsAnalyzer, BoundsVerdict, Code};
use mpress_bench::jobs::{bert_job, gpt_job};
use mpress_compaction::{InstrumentationPlan, MemoryDirective, StripePlan};
use mpress_graph::TensorKind;
use mpress_hw::{DeviceId, Machine};
use mpress_model::{zoo, TransformerConfig};
use mpress_pipeline::PipelineJob;
use mpress_sim::{DeviceMap, SimArena, Simulator};

fn zoo_jobs(machine: &Machine) -> Vec<(String, PipelineJob)> {
    let bert: Vec<TransformerConfig> = zoo::bert_variants();
    let gpt: Vec<TransformerConfig> = zoo::gpt_variants();
    bert.into_iter()
        .map(|m| (m.to_string(), bert_job(m, machine.clone())))
        .chain(
            gpt.into_iter()
                .map(|m| (m.to_string(), gpt_job(m, machine.clone()))),
        )
        .collect()
}

/// Soundness: the verifier accepts every planner-emitted plan for every
/// zoo model on both NVLink machines. A single diagnostic here means the
/// planner hook could veto a legitimate candidate — the one thing the
/// analysis must never do.
#[test]
fn verifier_accepts_every_planner_plan_across_zoo_and_machines() {
    for machine in [Machine::dgx1(), Machine::dgx2()] {
        for (name, job) in zoo_jobs(&machine) {
            let mpress = Mpress::builder().job(job).build();
            let (plan, lowered) = mpress.plan().expect("planning succeeds");
            let report = check_plan(
                mpress.machine(),
                &lowered.graph,
                &plan.instrumentation,
                &plan.device_map,
            );
            assert!(
                report.is_clean(),
                "{name} on {}: planner plan flagged:\n{}",
                machine.name(),
                report.render_table()
            );
            assert_eq!(plan.search.verifier_rejections, 0, "{name}");
        }
    }
}

/// A pressured job whose full-MPress plan contains D2D stripes to
/// mutate: Bert-0.64B on DGX-1 (the paper's "medium size" case).
fn d2d_plan() -> (Mpress, mpress::MpressPlan, mpress_pipeline::LoweredJob) {
    let mpress = Mpress::builder()
        .job(bert_job(zoo::bert_0_64b(), Machine::dgx1()))
        .build();
    let (plan, lowered) = mpress.plan().expect("planning succeeds");
    (mpress, plan, lowered)
}

/// Rebuilds the plan with `mutate` applied to every directive.
fn mutate_plan(
    plan: &InstrumentationPlan,
    mut mutate: impl FnMut(mpress_graph::TensorId, &MemoryDirective) -> MemoryDirective,
) -> InstrumentationPlan {
    let mut out = InstrumentationPlan::new();
    for (t, d) in plan.iter() {
        out.assign(t, mutate(t, d));
    }
    out
}

/// Mutation: retarget one stripe to a device the source cannot reach
/// over NVLink. The exact code is MP006 (`BadStripe`), and it is
/// structural — the planner hook would veto this plan.
#[test]
fn retargeted_stripe_yields_mp006() {
    let (mpress, plan, lowered) = d2d_plan();
    let topology = mpress.machine().topology();
    let mut mutated_any = false;
    let mutated = mutate_plan(&plan.instrumentation, |t, d| {
        if mutated_any {
            return d.clone();
        }
        if let MemoryDirective::SwapD2d(stripe) = d {
            let src = plan.device_map.device_of(lowered.graph.tensor(t).stage);
            // DGX-1's cube mesh links each GPU to only four peers, so an
            // unreachable victim always exists.
            let bad = (0..mpress.machine().gpu_count())
                .map(DeviceId)
                .find(|&v| v != src && !topology.reachable(src, v))
                .expect("DGX-1 has unreachable pairs");
            mutated_any = true;
            return MemoryDirective::SwapD2d(StripePlan::single(stripe.total_bytes(), bad, 1));
        }
        d.clone()
    });
    assert!(mutated_any, "expected a D2D stripe in the 0.64B plan");
    let report = check_plan(mpress.machine(), &lowered.graph, &mutated, &plan.device_map);
    assert!(
        report.has_code(Code::BadStripe),
        "expected MP006:\n{}",
        report.render_table()
    );
    assert!(report.has_structural_errors());
}

/// Mutation: recompute a parameter. Statics are never recomputable, so
/// the exact code is MP009 (`BadRecompute`).
#[test]
fn recompute_on_parameter_yields_mp009() {
    let (mpress, plan, lowered) = d2d_plan();
    let param = lowered
        .graph
        .tensors()
        .iter()
        .find(|t| t.kind == TensorKind::Parameter)
        .expect("graph has parameters");
    let mut mutated = plan.instrumentation.clone();
    mutated.assign(param.id, MemoryDirective::Recompute);
    let report = check_plan(mpress.machine(), &lowered.graph, &mutated, &plan.device_map);
    assert!(
        report.has_code(Code::BadRecompute),
        "expected MP009:\n{}",
        report.render_table()
    );
}

/// Mutation: a device map covering the wrong number of stages. The
/// exact code is MP011 (`BadDeviceMap`).
#[test]
fn short_device_map_yields_mp011() {
    let (mpress, plan, lowered) = d2d_plan();
    let short = DeviceMap::identity(lowered.graph.n_stages() - 1);
    let report = check_plan(
        mpress.machine(),
        &lowered.graph,
        &plan.instrumentation,
        &short,
    );
    assert!(
        report.has_code(Code::BadDeviceMap),
        "expected MP011:\n{}",
        report.render_table()
    );
}

/// Soundness of the certified bounds: for every zoo model on both
/// NVLink machines, the emulated makespan and per-device peaks of the
/// planner's chosen plan lie inside the certified intervals, and a
/// `certified-oom` verdict is always confirmed by the engine. (The
/// bench oracle `exp_bench_bounds` additionally sweeps directive
/// mutations; this is the tier-1 cut of the same property.)
#[test]
fn certified_bounds_contain_emulation_across_zoo_and_machines() {
    let mut arena = SimArena::new();
    for machine in [Machine::dgx1(), Machine::dgx2()] {
        for (name, job) in zoo_jobs(&machine) {
            let mpress = Mpress::builder().job(job).build();
            let (plan, lowered) = mpress.plan().expect("planning succeeds");
            let analyzer = BoundsAnalyzer::new(mpress.machine(), &lowered.graph);
            let bounds =
                analyzer.certify_with_arena(&plan.instrumentation, &plan.device_map, &mut arena);
            let sim = Simulator::new(
                mpress.machine(),
                &lowered.graph,
                &plan.instrumentation,
                plan.device_map.clone(),
            )
            .run_in(&mut arena)
            .expect("chosen plan emulates");
            let case = format!("{name} on {}", machine.name());
            assert!(
                sim.makespan <= bounds.makespan_hi * (1.0 + 1e-9),
                "{case}: makespan {} above upper bound {}",
                sim.makespan,
                bounds.makespan_hi
            );
            for (d, peak) in sim.device_peak.iter().enumerate() {
                assert!(
                    *peak <= bounds.residency.hi[d],
                    "{case}: gpu{d} peak {peak} above upper bound {}",
                    bounds.residency.hi[d]
                );
            }
            if sim.oom.is_none() {
                assert!(
                    sim.makespan >= bounds.makespan_lo * (1.0 - 1e-9),
                    "{case}: makespan {} below lower bound {}",
                    sim.makespan,
                    bounds.makespan_lo
                );
                for (d, peak) in sim.device_peak.iter().enumerate() {
                    assert!(
                        *peak >= bounds.residency.lo[d],
                        "{case}: gpu{d} peak {peak} below lower bound {}",
                        bounds.residency.lo[d]
                    );
                }
            }
            if bounds.residency.verdict == BoundsVerdict::CertifiedOom {
                assert!(sim.oom.is_some(), "{case}: certified-oom but completed");
            }
        }
    }
}

/// A bare plan (no directives) for GPT-15.4B on DGX-1 homes every
/// static — parameters, gradients, optimizer state — on its stage's
/// GPU, which is certifiably over the 32 GiB budget before any
/// emulation. The verdict is `certified-oom` and the report carries
/// MP013 for the overloaded devices, as a *model-capacity* error, not a
/// structural one (the plan spec itself is well-formed).
#[test]
fn bare_plan_on_gpt_15_4b_is_certified_oom_mp013() {
    let job = gpt_job(zoo::gpt_15_4b(), Machine::dgx1());
    let lowered = job.lower().expect("paper job lowers");
    let machine = Machine::dgx1();
    let map = DeviceMap::identity(lowered.graph.n_stages());
    let analyzer = BoundsAnalyzer::new(&machine, &lowered.graph);
    let bounds = analyzer.certify(&InstrumentationPlan::new(), &map);
    assert_eq!(bounds.verdict, BoundsVerdict::CertifiedOom);
    let report = bounds.report(machine.gpu().usable_memory());
    assert!(
        report.has_code(Code::CertifiedOom),
        "expected MP013:\n{}",
        report.render_table()
    );
    assert!(report.error_count() > 0);
    assert!(!report.has_structural_errors());
}

/// The bounds gate must be invisible: a bounds-on run's report is
/// byte-identical to a bounds-off run's (certified-OOM candidates lose
/// to any non-OOM incumbent anyway, and the certified lower bound only
/// skips candidates the metric could never prefer). On this pressured
/// case the gate also demonstrably fires.
#[test]
fn bounds_gate_does_not_change_the_chosen_plan() {
    let run = |bounds: bool| -> String {
        let report = Mpress::builder()
            .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
            .bounds(bounds)
            .build()
            .train()
            .expect("valid inputs");
        if bounds {
            assert!(
                report.plan.search.bounds_pruned > 0,
                "bounds gate never fired: {:?}",
                report.plan.search
            );
        } else {
            assert_eq!(report.plan.search.bounds_pruned, 0);
        }
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{}",
            report.plan.device_map,
            report.plan.instrumentation,
            report.plan.refinement_rounds,
            report.sim.makespan.to_bits(),
            report.sim.device_peak,
            report.sim.host_traffic,
            report.tflops.to_bits(),
            report.throughput.to_bits(),
        )
    };
    assert_eq!(run(true), run(false));
}

/// The planner hook must be invisible: a verify-on run's report is
/// byte-identical to a verify-off run's (the verifier only ever rejects
/// plans the planner would never emit).
#[test]
fn verifier_hook_does_not_change_the_chosen_plan() {
    let run = |verify: bool| -> String {
        let report = Mpress::builder()
            .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
            .verify(verify)
            .build()
            .train()
            .expect("valid inputs");
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{}",
            report.plan.device_map,
            report.plan.instrumentation,
            report.plan.refinement_rounds,
            report.sim.makespan.to_bits(),
            report.sim.device_peak,
            report.sim.host_traffic,
            report.tflops.to_bits(),
            report.throughput.to_bits(),
        )
    };
    assert_eq!(run(true), run(false));
}

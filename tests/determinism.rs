//! Parallel search determinism: the plan and the simulated report must be
//! byte-identical no matter how many workers the pool uses. `par_map`
//! places results by input index and every winner is chosen by a fixed
//! tie-break (best metric, ties to the lowest candidate index), so
//! `--jobs 1` and `--jobs 4` must agree exactly — this suite is the
//! contract's regression net.
//!
//! The worker-count override is process-global; each check therefore runs
//! its two configurations back-to-back inside one test body. Even if the
//! harness interleaves tests, the assertion itself is exactly the claim
//! that the worker count cannot matter.

use mpress::Mpress;
use mpress_bench::jobs::{bert_job, SystemConfig};
use mpress_hw::Machine;
use mpress_model::zoo;

/// Everything observable about a planned-and-simulated run, except the
/// pool stats themselves (`search.jobs` legitimately differs).
fn fingerprint(jobs: usize) -> String {
    mpress_par::set_jobs(jobs);
    let mpress = Mpress::builder()
        .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
        .build();
    let report = mpress.train().expect("valid inputs");
    mpress_par::set_jobs(0);
    format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{}",
        report.plan.device_map,
        report.plan.instrumentation,
        report.plan.refinement_rounds,
        report.sim.makespan.to_bits(),
        report.sim.device_peak,
        report.sim.host_traffic,
        report.tflops.to_bits(),
        report.throughput.to_bits(),
    )
}

/// The metrics fingerprint: the serialized telemetry document of a
/// metrics-enabled run. Worker-count independence must extend to stall
/// attribution, link accounting and the recorder's histograms —
/// everything `--metrics=json` prints. (`search.jobs`/`peak_workers`
/// legitimately differ, so the `search` block is excluded.)
fn metrics_fingerprint(jobs: usize) -> String {
    mpress_par::set_jobs(jobs);
    let mpress = Mpress::builder()
        .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
        .metrics(true)
        .build();
    let report = mpress.train().expect("valid inputs");
    mpress_par::set_jobs(0);
    let telemetry = report.metrics.expect("metrics were enabled");
    let sim = telemetry.sim.expect("training run simulates");
    serde_json::to_string(&sim).expect("telemetry serializes")
}

#[test]
fn full_planner_is_identical_at_jobs_1_and_4() {
    assert_eq!(fingerprint(1), fingerprint(4));
}

#[test]
fn metrics_telemetry_is_identical_at_jobs_1_and_4() {
    assert_eq!(metrics_fingerprint(1), metrics_fingerprint(4));
}

#[test]
fn metrics_collection_does_not_change_the_report() {
    // The observability layer must be invisible: a metrics-enabled run's
    // plan and simulation results are byte-identical to a disabled run's.
    let run = |metrics: bool| -> String {
        let report = Mpress::builder()
            .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
            .metrics(metrics)
            .build()
            .train()
            .expect("valid inputs");
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{}",
            report.plan.device_map,
            report.plan.instrumentation,
            report.sim.makespan.to_bits(),
            report.sim.device_peak,
            report.sim.host_traffic,
            report.tflops.to_bits(),
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn delta_replay_does_not_change_the_chosen_plan() {
    // The refinement loop's delta-aware emulation (checkpoint restore +
    // suffix replay) must be invisible in every outcome: the plan,
    // refinement trajectory and simulated report of a delta-enabled run
    // are byte-identical to a from-scratch-only run's. This is the
    // `MPRESS_DELTA=0` escape hatch's contract, exercised through the
    // builder flag so the test does not mutate process-global env state.
    let run = |delta: bool| -> String {
        let report = Mpress::builder()
            .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
            .delta(delta)
            .build()
            .train()
            .expect("valid inputs");
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}|{}",
            report.plan.device_map,
            report.plan.instrumentation,
            report.plan.refinement_rounds,
            report.sim.makespan.to_bits(),
            report.sim.device_peak,
            report.sim.host_traffic,
            report.tflops.to_bits(),
            report.throughput.to_bits(),
        )
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn fig7_row_is_identical_at_jobs_1_and_4() {
    let systems = [
        SystemConfig::Plain,
        SystemConfig::GpuCpuSwap,
        SystemConfig::Recomputation,
        SystemConfig::MpressD2dOnly,
        SystemConfig::Mpress,
    ];
    let row = |jobs: usize| -> Vec<Option<u64>> {
        mpress_par::set_jobs(jobs);
        let cells = systems
            .iter()
            .map(|sys| {
                sys.run(bert_job(zoo::bert_0_64b(), Machine::dgx1()))
                    .map(f64::to_bits)
            })
            .collect();
        mpress_par::set_jobs(0);
        cells
    };
    assert_eq!(row(1), row(4));
}

#[test]
fn speculative_search_is_identical_on_oversubscribed_pool() {
    // The frontier search's strongest configuration — widened explore
    // grid, bound-and-abort emulation, and a pool oversubscribed past
    // the hardware clamp so steals and speculation really happen — must
    // still choose the jobs=1 plan byte-for-byte. Candidates are
    // adjudicated in frontier order regardless of which worker finished
    // them, so worker interleaving cannot leak into the outcome.
    let run = |jobs: usize, unclamped: bool| -> String {
        mpress_par::set_pool_unclamped(unclamped);
        mpress_par::set_jobs(jobs);
        let report = Mpress::builder()
            .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
            .explore(true)
            .bound_abort(true)
            .build()
            .train()
            .expect("valid inputs");
        mpress_par::set_jobs(0);
        mpress_par::set_pool_unclamped(false);
        format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{}",
            report.plan.device_map,
            report.plan.instrumentation,
            report.plan.refinement_rounds,
            report.plan.refine_candidates,
            report.sim.makespan.to_bits(),
            report.sim.host_traffic,
            report.tflops.to_bits(),
        )
    };
    assert_eq!(run(1, false), run(8, true));
}

#[test]
fn cancel_mid_search_reports_cancelled_not_bound_exceeded() {
    // A tripped CancelToken must surface as `SimError::Cancelled` even
    // with bound-and-abort emulation on: an exhausted budget and a
    // bound-exceeded window travel different paths (the former is an
    // error, the latter a conclusive "candidate lost" verdict that is
    // never reported to the caller).
    use mpress::{CancelToken, MpressError};
    use mpress_sim::SimError;
    for budget in [1usize, 3, 8, 21] {
        let err = Mpress::builder()
            .job(bert_job(zoo::bert_1_67b(), Machine::dgx1()))
            .explore(true)
            .bound_abort(true)
            .cancel(CancelToken::with_run_budget(budget))
            .build()
            .plan()
            .expect_err("the run budget trips mid-search");
        match err {
            MpressError::Simulation(SimError::Cancelled) => {}
            other => panic!("budget {budget}: expected Cancelled, got {other:?}"),
        }
    }
}

//! Deterministic coverage for the delta-replay fast path: these tests
//! pin down that `run_in_delta` actually restores a checkpoint and
//! replays a strict suffix (the property tests in `proptests.rs` prove
//! identity but would also pass if every case quietly fell back).

use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective};
use mpress_graph::{TensorId, TensorKind};
use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{PipelineJob, ScheduleKind};
use mpress_sim::{DeviceMap, SimArena, Simulator};

fn lowered_job() -> mpress_pipeline::LoweredJob {
    PipelineJob::builder()
        .model(
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(8)
                .hidden(256)
                .seq_len(128)
                .build(),
        )
        .schedule(ScheduleKind::Dapple)
        .stages(4)
        .microbatch_size(2)
        .microbatches(6)
        .precision(PrecisionPolicy::mixed())
        .build()
        .unwrap()
        .lower()
        .unwrap()
}

/// Layered activations in id order — the candidates every plan mutation
/// below draws from.
fn activations(lowered: &mpress_pipeline::LoweredJob) -> Vec<TensorId> {
    lowered
        .graph
        .tensors()
        .iter()
        .filter(|t| t.kind == TensorKind::Activation && t.layer.is_some())
        .map(|t| t.id)
        .collect()
}

/// Retiming one swap leg (Dram -> Nvme) on a late tensor must replay
/// only a suffix of the windows, and the result must equal scratch.
#[test]
fn swap_retiming_takes_the_fast_path() {
    let lowered = lowered_job();
    let acts = activations(&lowered);
    let mut base_plan = InstrumentationPlan::new();
    for &t in &acts {
        base_plan.assign(t, MemoryDirective::SwapToHost(HostTier::Dram));
    }
    let mut cand_plan = base_plan.clone();
    let late = *acts.last().unwrap();
    cand_plan.assign(late, MemoryDirective::SwapToHost(HostTier::Nvme));

    let machine = mpress_hw::Machine::dgx1();
    let map = DeviceMap::identity(4);
    let mut arena = SimArena::new();
    let base_sim = Simulator::new(&machine, &lowered.graph, &base_plan, map.clone());
    let plain = base_sim.run_in(&mut arena).unwrap();
    let (captured, base) = base_sim.run_in_captured(&mut arena, 16).unwrap();
    assert_eq!(captured, plain, "capture must not perturb the run");
    let base = base.expect("successful plain-config run must yield a base");

    let cand_sim = Simulator::new(&machine, &lowered.graph, &cand_plan, map);
    let scratch = cand_sim.run_in(&mut arena).unwrap();
    let delta = cand_sim.run_in_delta(&mut arena, &base).unwrap();
    assert_eq!(delta.report, scratch);
    assert!(
        delta.used_delta,
        "expected a checkpoint restore, got fallback"
    );
    assert!(
        delta.windows_replayed < delta.windows_total,
        "expected a strict suffix replay: {}/{}",
        delta.windows_replayed,
        delta.windows_total
    );
}

/// Dropping a swap entirely (dead legs) must still be byte-identical,
/// and the same base must serve many candidates in sequence.
#[test]
fn dead_legs_and_template_reuse_stay_identical() {
    let lowered = lowered_job();
    let acts = activations(&lowered);
    let mut base_plan = InstrumentationPlan::new();
    for (i, &t) in acts.iter().enumerate() {
        match i % 3 {
            0 => base_plan.assign(t, MemoryDirective::SwapToHost(HostTier::Dram)),
            1 => base_plan.assign(t, MemoryDirective::Recompute),
            _ => {}
        }
    }
    let machine = mpress_hw::Machine::dgx1();
    let map = DeviceMap::identity(4);
    let mut arena = SimArena::new();
    let base_sim = Simulator::new(&machine, &lowered.graph, &base_plan, map.clone());
    let (_, base) = base_sim.run_in_captured(&mut arena, 16).unwrap();
    let base = base.expect("base");

    let mut deltas_used = 0;
    for (i, &t) in acts.iter().enumerate() {
        let mut cand_plan = base_plan.clone();
        match i % 4 {
            0 => {
                cand_plan.remove(t);
            }
            1 => cand_plan.assign(t, MemoryDirective::SwapToHost(HostTier::Nvme)),
            2 => cand_plan.assign(t, MemoryDirective::Recompute),
            _ => cand_plan.assign(t, MemoryDirective::SwapToHost(HostTier::Dram)),
        }
        let cand_sim = Simulator::new(&machine, &lowered.graph, &cand_plan, map.clone());
        let scratch = cand_sim.run_in(&mut arena).unwrap();
        let delta = cand_sim.run_in_delta(&mut arena, &base).unwrap();
        assert_eq!(delta.report, scratch, "candidate {i} diverged");
        if delta.used_delta {
            deltas_used += 1;
        }
    }
    assert!(
        deltas_used > 0,
        "no candidate took the fast path across {} mutations",
        acts.len()
    );
}

//! Property-based tests over core data structures and invariants.

use mpress_baselines::MegatronBaseline;
use mpress_compaction::StripePlan;
use mpress_compaction::{HostTier, InstrumentationPlan, MemoryDirective};
use mpress_graph::TensorKind;
use mpress_hw::{Bytes, DeviceId, Topology};
use mpress_model::{ModelFamily, PrecisionPolicy, TransformerConfig};
use mpress_pipeline::{
    MemoryDemands, PartitionGoal, ScheduleKind, StagePartition, StageProgram, StageSlot,
};
use mpress_sim::{DeviceMap, SimArena, SimConfig, Simulator};
use proptest::prelude::*;

proptest! {
    /// `Bytes::split_even` conserves the total and balances within 1 byte.
    #[test]
    fn bytes_split_even_conserves(total in 0u64..1u64 << 40, n in 1usize..64) {
        let b = Bytes(total);
        let parts = b.split_even(n);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts.iter().copied().sum::<Bytes>(), b);
        let max = parts.iter().max().unwrap().as_u64();
        let min = parts.iter().min().unwrap().as_u64();
        prop_assert!(max - min <= 1);
    }

    /// Weighted striping conserves bytes exactly and respects lane ratios
    /// approximately.
    #[test]
    fn stripe_weighted_conserves(
        bytes in 1u64..1u64 << 36,
        lanes in proptest::collection::vec(1u32..4, 1..6),
    ) {
        let targets: Vec<(DeviceId, u32)> = lanes
            .iter()
            .enumerate()
            .map(|(i, &l)| (DeviceId(i + 1), l))
            .collect();
        let plan = StripePlan::weighted(Bytes(bytes), &targets);
        prop_assert_eq!(plan.total_bytes(), Bytes(bytes));
        prop_assert_eq!(plan.n_chunks(), targets.len());
        // One-way time is bounded by the slowest single chunk and is
        // never slower than sending everything over the widest pair.
        prop_assert!(plan.one_way_time() > 0.0);
    }

    /// Equal striping also conserves bytes.
    #[test]
    fn stripe_equal_conserves(bytes in 1u64..1u64 << 36, n in 1usize..7) {
        let targets: Vec<DeviceId> = (1..=n).map(DeviceId).collect();
        let plan = StripePlan::equal(Bytes(bytes), &targets, 1);
        prop_assert_eq!(plan.total_bytes(), Bytes(bytes));
    }

    /// Balanced partitions tile all layers exactly once, for both goals.
    #[test]
    fn partition_tiles_layers(
        layers in 8usize..96,
        stages in 1usize..9,
        hidden_mult in 2usize..20,
    ) {
        prop_assume!(stages <= layers);
        let model = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(layers)
            .hidden(hidden_mult * 128)
            .build();
        for goal in [PartitionGoal::Computation, PartitionGoal::Memory] {
            let p = StagePartition::balanced(&model, stages, 2, &PrecisionPolicy::mixed(), goal);
            prop_assert_eq!(p.n_stages(), stages);
            prop_assert_eq!(p.num_layers(), layers);
            let mut covered = 0;
            for s in 0..stages {
                let r = p.stage_layers(s);
                prop_assert_eq!(r.start, covered);
                prop_assert!(!r.is_empty());
                covered = r.end;
            }
            prop_assert_eq!(covered, layers);
        }
    }

    /// 1F1B programs execute each microbatch's forward exactly once,
    /// backward exactly once, and forward-before-backward.
    #[test]
    fn one_f_one_b_is_complete_and_ordered(
        stages in 1usize..9,
        stage_sel in 0usize..8,
        microbatches in 1usize..33,
        kind_sel in 0usize..3,
    ) {
        let stage = stage_sel % stages;
        let kind = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe][kind_sel];
        let p = StageProgram::one_f_one_b(kind, stage, stages, microbatches);
        let mut fwd_seen = vec![false; microbatches];
        let mut bwd_seen = vec![false; microbatches];
        for slot in &p.slots {
            match *slot {
                StageSlot::Forward(m) => {
                    prop_assert!(!fwd_seen[m as usize], "duplicate forward {m}");
                    fwd_seen[m as usize] = true;
                }
                StageSlot::Backward(m) => {
                    prop_assert!(fwd_seen[m as usize], "backward {m} before forward");
                    prop_assert!(!bwd_seen[m as usize], "duplicate backward {m}");
                    bwd_seen[m as usize] = true;
                }
                StageSlot::OptimizerStep => {}
            }
        }
        prop_assert!(fwd_seen.into_iter().all(|x| x));
        prop_assert!(bwd_seen.into_iter().all(|x| x));
        // Peak in-flight never exceeds the schedule's bound.
        prop_assert!(p.peak_in_flight() <= kind.in_flight(stage, stages, microbatches));
    }

    /// Analytic memory demands decrease monotonically along the pipeline
    /// and scale with the microbatch count cap.
    #[test]
    fn demands_monotone_along_stages(
        layers in 16usize..64,
        hidden_mult in 4usize..16,
        microbatches in 8usize..32,
        kind_sel in 0usize..3,
    ) {
        let model = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(layers)
            .hidden(hidden_mult * 128)
            .build();
        let kind = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe][kind_sel];
        let policy = PrecisionPolicy::mixed();
        let part = StagePartition::balanced(&model, 8, 2, &policy, PartitionGoal::Computation);
        let d = MemoryDemands::compute(&model, &part, kind, 2, microbatches, &policy);
        for w in d.per_stage_peak.windows(2) {
            prop_assert!(w[0] >= w[1], "{:?}", d.per_stage_peak);
        }
        prop_assert_eq!(d.total(), d.per_stage_peak.iter().copied().sum::<Bytes>());
    }

    /// Every DGX-1 stripe plan built from actual neighbour lane counts
    /// validates against the topology.
    #[test]
    fn dgx1_neighbor_stripes_validate(src in 0usize..8, bytes in 1u64..1u64 << 32) {
        let topo = Topology::dgx1();
        let src = DeviceId(src);
        let nbhs = topo.neighbors(src);
        let plan = StripePlan::weighted(Bytes(bytes), &nbhs.iter().map(|&(d, l)| (d, l)).collect::<Vec<_>>());
        prop_assert!(plan.validate(src, &topo).is_ok());
    }

    /// Transformer parameter counts are monotone in depth and width.
    #[test]
    fn params_monotone(layers in 2usize..64, hidden_mult in 2usize..32) {
        let base = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(layers)
            .hidden(hidden_mult * 128)
            .build();
        let deeper = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(layers + 1)
            .hidden(hidden_mult * 128)
            .build();
        let wider = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(layers)
            .hidden((hidden_mult + 1) * 128)
            .build();
        prop_assert!(deeper.total_params() > base.total_params());
        prop_assert!(wider.total_params() > base.total_params());
    }

    /// A PCIe-only topology has no NVLink edges at any size: no pair is
    /// reachable, no device has lanes, and the matrix passes the same
    /// validation as the DGX presets.
    #[test]
    fn pcie_only_topology_has_no_links(n in 1usize..16) {
        let topo = Topology::pcie_only(n);
        prop_assert_eq!(topo.gpu_count(), n);
        for a in topo.devices() {
            prop_assert_eq!(topo.total_lanes(a), 0);
            for b in topo.devices() {
                prop_assert!(!topo.reachable(a, b));
            }
        }
    }

    /// The Megatron model's traffic accounting is exactly the ring
    /// all-reduce volume: (4L + 2) all-reduces of the boundary tensor,
    /// each moving 2(t-1)/t of its bytes per GPU.
    #[test]
    fn megatron_traffic_matches_ring_formula(
        layers in 2usize..48,
        hidden_mul in 2usize..20,
        mb in 1usize..5,
    ) {
        let model = TransformerConfig::builder(ModelFamily::Gpt)
            .layers(layers)
            .hidden(hidden_mul * 128)
            .build();
        let b = MegatronBaseline::new(mpress_hw::Machine::dgx1(), model.clone())
            .microbatch_size(mb);
        let v = model
            .boundary_activation_bytes(mb, &PrecisionPolicy::mixed())
            .as_u64() as f64;
        let expect = (4 * layers + 2) as f64 * 2.0 * 7.0 / 8.0 * v;
        let got = b.comm_bytes_per_microbatch().as_u64() as f64;
        prop_assert!((got - expect).abs() <= 1.0, "{got} vs {expect}");
    }

    /// Megatron's per-GPU memory grows monotonically in both layer count
    /// and microbatch size, and always fits more than the serial model's
    /// 1/t share (the replicated activation floor).
    #[test]
    fn megatron_memory_monotone(layers in 2usize..40, mb in 1usize..6) {
        let model = |l: usize| {
            TransformerConfig::builder(ModelFamily::Gpt)
                .layers(l)
                .hidden(1024)
                .build()
        };
        let bytes = |l: usize, b: usize| {
            MegatronBaseline::new(mpress_hw::Machine::dgx1(), model(l))
                .microbatch_size(b)
                .report()
                .gpu_bytes
        };
        prop_assert!(bytes(layers + 1, mb) > bytes(layers, mb));
        prop_assert!(bytes(layers, mb + 1) > bytes(layers, mb));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Fuzzing the full lower→instrument→simulate path: for arbitrary
    /// small jobs and arbitrary swap/recompute directive subsets the
    /// engine must terminate (no deadlock), report capacity-respecting
    /// peaks on success, and be bit-for-bit deterministic.
    #[test]
    fn engine_never_deadlocks_on_random_jobs_and_plans(
        layers in 2usize..10,
        stages in 2usize..5,
        mb in 1usize..4,
        microbatches in 2usize..8,
        schedule_pick in 0usize..3,
        gpu_gib in 1u64..8,
        directive_mask in 0u64..(1 << 12),
    ) {
        prop_assume!(layers >= stages);
        let schedule = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe]
            [schedule_pick];
        let job = mpress_pipeline::PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(256)
                    .seq_len(128)
                    .build(),
            )
            .schedule(schedule)
            .stages(stages)
            .microbatch_size(mb)
            .microbatches(microbatches)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        // Assign a pseudo-random directive to every 12th-bucket activation.
        let mut plan = InstrumentationPlan::new();
        for t in lowered.graph.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            match (directive_mask >> (t.id.index() % 12)) & 3 {
                1 => plan.assign(t.id, MemoryDirective::Recompute),
                2 => plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => {}
            }
        }
        let machine = mpress_hw::Machine::builder()
            .name("fuzz")
            .gpu({
                let mut g = mpress_hw::GpuSpec::v100_32gb();
                g.memory = Bytes::gib(gpu_gib);
                g
            })
            .topology(Topology::dgx2())
            .build();
        let run = || {
            Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(stages))
                .run()
                .expect("engine must terminate, not deadlock")
        };
        let a = run();
        if a.succeeded() {
            for peak in &a.device_peak {
                prop_assert!(*peak <= machine.gpu().usable_memory());
            }
        } else {
            prop_assert!(a.oom.is_some());
        }
        let b = run();
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.device_peak, b.device_peak);
        prop_assert_eq!(a.host_traffic, b.host_traffic);
    }

    /// The indexed fast path (dirty-stream worklist + ready-set bitset +
    /// recycled arena buffers) is a pure optimization: for arbitrary
    /// jobs and directive subsets it must produce a `SimReport`
    /// identical to the retained reference full-scan engine — including
    /// a second run through the *same* arena, which exercises buffer
    /// recycling.
    #[test]
    fn fast_engine_matches_reference_scan(
        layers in 2usize..10,
        stages in 2usize..5,
        mb in 1usize..4,
        microbatches in 2usize..8,
        schedule_pick in 0usize..3,
        gpu_gib in 1u64..8,
        directive_mask in 0u64..(1 << 12),
    ) {
        prop_assume!(layers >= stages);
        let schedule = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe]
            [schedule_pick];
        let job = mpress_pipeline::PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(256)
                    .seq_len(128)
                    .build(),
            )
            .schedule(schedule)
            .stages(stages)
            .microbatch_size(mb)
            .microbatches(microbatches)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        let mut plan = InstrumentationPlan::new();
        for t in lowered.graph.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            match (directive_mask >> (t.id.index() % 12)) & 3 {
                1 => plan.assign(t.id, MemoryDirective::Recompute),
                2 => plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => {}
            }
        }
        let machine = mpress_hw::Machine::builder()
            .name("fuzz")
            .gpu({
                let mut g = mpress_hw::GpuSpec::v100_32gb();
                g.memory = Bytes::gib(gpu_gib);
                g
            })
            .topology(Topology::dgx2())
            .build();
        let sim = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(stages));
        let mut arena = SimArena::new();
        let fast_fresh = sim.run_in(&mut arena).expect("fast engine must terminate");
        let fast_reused = sim.run_in(&mut arena).expect("fast engine must terminate");
        let reference = Simulator::new(&machine, &lowered.graph, &plan, DeviceMap::identity(stages))
            .with_config(SimConfig::default().reference_scan(true))
            .run()
            .expect("reference engine must terminate");
        prop_assert_eq!(&fast_fresh, &reference);
        prop_assert_eq!(&fast_reused, &reference);
    }

    /// The analytic makespan bound used by the plan-search prefilter is
    /// sound: it never exceeds the emulated makespan of a successful run.
    #[test]
    fn analytic_lower_bound_is_sound(
        layers in 2usize..10,
        stages in 2usize..5,
        mb in 1usize..4,
        microbatches in 2usize..8,
        schedule_pick in 0usize..3,
        directive_mask in 0u64..(1 << 12),
    ) {
        prop_assume!(layers >= stages);
        let schedule = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe]
            [schedule_pick];
        let job = mpress_pipeline::PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(256)
                    .seq_len(128)
                    .build(),
            )
            .schedule(schedule)
            .stages(stages)
            .microbatch_size(mb)
            .microbatches(microbatches)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        let mut plan = InstrumentationPlan::new();
        for t in lowered.graph.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            match (directive_mask >> (t.id.index() % 12)) & 3 {
                1 => plan.assign(t.id, MemoryDirective::Recompute),
                2 => plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => {}
            }
        }
        let machine = mpress_hw::Machine::dgx1();
        let map = DeviceMap::identity(stages);
        let mut arena = SimArena::new();
        let lb = arena.makespan_lower_bound(&machine, &lowered.graph, &plan, &map);
        let report = Simulator::new(&machine, &lowered.graph, &plan, map)
            .run_in(&mut arena)
            .expect("engine must terminate");
        if report.succeeded() {
            prop_assert!(
                lb <= report.makespan * (1.0 + 1e-9),
                "bound {lb} exceeds emulated makespan {}",
                report.makespan
            );
        }
    }

    /// The certified bounds are sound on fuzzed jobs and directive
    /// masks: every emulated makespan and per-device peak lies inside
    /// its certified interval (lower bounds only bind on non-OOM runs,
    /// which assume a completed schedule), and certified verdicts are
    /// confirmed by the engine.
    #[test]
    fn certified_bounds_are_sound(
        layers in 2usize..10,
        stages in 2usize..5,
        mb in 1usize..4,
        microbatches in 2usize..8,
        schedule_pick in 0usize..3,
        directive_mask in 0u64..(1 << 12),
    ) {
        prop_assume!(layers >= stages);
        let schedule = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe]
            [schedule_pick];
        let job = mpress_pipeline::PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(256)
                    .seq_len(128)
                    .build(),
            )
            .schedule(schedule)
            .stages(stages)
            .microbatch_size(mb)
            .microbatches(microbatches)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        let mut plan = InstrumentationPlan::new();
        for t in lowered.graph.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            match (directive_mask >> (t.id.index() % 12)) & 3 {
                1 => plan.assign(t.id, MemoryDirective::Recompute),
                2 => plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => {}
            }
        }
        let machine = mpress_hw::Machine::dgx1();
        let map = DeviceMap::identity(stages);
        let mut arena = SimArena::new();
        let bounds =
            mpress_analyze::certify_plan(&machine, &lowered.graph, &plan, &map, &mut arena);
        let report = Simulator::new(&machine, &lowered.graph, &plan, map)
            .run_in(&mut arena)
            .expect("engine must terminate");
        prop_assert!(
            report.makespan <= bounds.makespan_hi * (1.0 + 1e-9),
            "makespan {} above certified upper bound {}",
            report.makespan,
            bounds.makespan_hi
        );
        for (d, peak) in report.device_peak.iter().enumerate() {
            prop_assert!(
                *peak <= bounds.residency.hi[d],
                "gpu{} peak {} above certified upper bound {}",
                d, peak, bounds.residency.hi[d]
            );
        }
        if report.oom.is_none() {
            prop_assert!(
                bounds.makespan_lo <= report.makespan * (1.0 + 1e-9),
                "lower bound {} above emulated makespan {}",
                bounds.makespan_lo,
                report.makespan
            );
            for (d, peak) in report.device_peak.iter().enumerate() {
                prop_assert!(
                    *peak >= bounds.residency.lo[d],
                    "gpu{} peak {} below certified lower bound {}",
                    d, peak, bounds.residency.lo[d]
                );
            }
        }
        if bounds.residency.verdict == mpress_analyze::BoundsVerdict::CertifiedOom {
            prop_assert!(report.oom.is_some(), "certified-oom but the run completed");
        }
        if bounds.residency.verdict == mpress_analyze::BoundsVerdict::CertifiedFit {
            let gpu_oom = report
                .oom
                .as_ref()
                .is_some_and(|e| e.pool == mpress_sim::PoolKind::Gpu);
            prop_assert!(!gpu_oom, "certified-fit but a GPU pool overflowed");
        }
    }

    /// Incremental re-emulation is invisible: capturing window
    /// checkpoints does not perturb the base run, and replaying a
    /// seeded single-choice mutation as a delta against that base is
    /// byte-identical to emulating the mutated plan from scratch —
    /// including a second replay through the same base, which exercises
    /// the template round-trip.
    #[test]
    fn delta_replay_matches_from_scratch(
        layers in 2usize..10,
        stages in 2usize..5,
        mb in 1usize..4,
        microbatches in 2usize..8,
        schedule_pick in 0usize..3,
        gpu_gib in 1u64..8,
        directive_mask in 0u64..(1 << 12),
        mutate_pick in 0usize..64,
        mutate_to in 0usize..4,
    ) {
        prop_assume!(layers >= stages);
        let schedule = [ScheduleKind::PipeDream, ScheduleKind::Dapple, ScheduleKind::GPipe]
            [schedule_pick];
        let job = mpress_pipeline::PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(256)
                    .seq_len(128)
                    .build(),
            )
            .schedule(schedule)
            .stages(stages)
            .microbatch_size(mb)
            .microbatches(microbatches)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        let mut base_plan = InstrumentationPlan::new();
        let mut acts = Vec::new();
        for t in lowered.graph.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            acts.push(t.id);
            match (directive_mask >> (t.id.index() % 12)) & 3 {
                1 => base_plan.assign(t.id, MemoryDirective::Recompute),
                2 => base_plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => {}
            }
        }
        let mut cand_plan = base_plan.clone();
        if !acts.is_empty() {
            let t = acts[mutate_pick % acts.len()];
            match mutate_to {
                0 => {
                    cand_plan.remove(t);
                }
                1 => cand_plan.assign(t, MemoryDirective::Recompute),
                2 => cand_plan.assign(t, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => cand_plan.assign(t, MemoryDirective::SwapToHost(HostTier::Nvme)),
            }
        }
        let machine = mpress_hw::Machine::builder()
            .name("fuzz")
            .gpu({
                let mut g = mpress_hw::GpuSpec::v100_32gb();
                g.memory = Bytes::gib(gpu_gib);
                g
            })
            .topology(Topology::dgx2())
            .build();
        let map = DeviceMap::identity(stages);
        let mut arena = SimArena::new();
        let base_sim = Simulator::new(&machine, &lowered.graph, &base_plan, map.clone());
        let plain = base_sim.run_in(&mut arena).expect("base must terminate");
        let (captured, base) = base_sim
            .run_in_captured(&mut arena, 16)
            .expect("captured base must terminate");
        prop_assert_eq!(&captured, &plain);
        let cand_sim = Simulator::new(&machine, &lowered.graph, &cand_plan, map.clone());
        let scratch = cand_sim
            .run_in(&mut arena)
            .expect("candidate must terminate");
        if let Some(base) = base {
            for round in 0..2 {
                let delta = cand_sim
                    .run_in_delta(&mut arena, &base)
                    .expect("delta replay must terminate");
                prop_assert_eq!(
                    &delta.report, &scratch,
                    "round {} used_delta={}", round, delta.used_delta
                );
                prop_assert!(delta.windows_replayed <= delta.windows_total);
            }
        }
    }

    /// The planner's emulation cache is pure memoization: for arbitrary
    /// plans, `emulate` returns exactly what `emulate_uncached` computes,
    /// and a repeated `emulate` is served from the cache without changing
    /// the outcome.
    #[test]
    fn emulation_cache_is_transparent(
        layers in 2usize..8,
        stages in 2usize..5,
        mb in 1usize..3,
        microbatches in 2usize..6,
        directive_mask in 0u64..(1 << 12),
    ) {
        prop_assume!(layers >= stages);
        let job = mpress_pipeline::PipelineJob::builder()
            .model(
                TransformerConfig::builder(ModelFamily::Gpt)
                    .layers(layers)
                    .hidden(256)
                    .seq_len(128)
                    .build(),
            )
            .schedule(ScheduleKind::Dapple)
            .stages(stages)
            .microbatch_size(mb)
            .microbatches(microbatches)
            .precision(PrecisionPolicy::mixed())
            .build()
            .unwrap();
        let lowered = job.lower().unwrap();
        let mut plan = InstrumentationPlan::new();
        for t in lowered.graph.tensors() {
            if t.kind != TensorKind::Activation || t.layer.is_none() {
                continue;
            }
            match (directive_mask >> (t.id.index() % 12)) & 3 {
                1 => plan.assign(t.id, MemoryDirective::Recompute),
                2 => plan.assign(t.id, MemoryDirective::SwapToHost(HostTier::Dram)),
                _ => {}
            }
        }
        let machine = mpress_hw::Machine::dgx1();
        let planner = mpress::Planner::new(
            &machine,
            &job,
            &lowered,
            mpress::PlannerConfig::default(),
        );
        let map = DeviceMap::identity(stages);
        let uncached = planner.emulate_uncached(&plan, &map).unwrap();
        let cached = planner.emulate(&plan, &map).unwrap();
        let hit = planner.emulate(&plan, &map).unwrap();
        prop_assert_eq!(cached, uncached);
        prop_assert_eq!(hit, uncached);
        let stats = planner.search_stats();
        prop_assert!(stats.cache_hits >= 1, "expected a cache hit: {stats:?}");
        prop_assert!(stats.emulator_runs >= 2, "expected real runs: {stats:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Bound-and-abort emulation is outcome-transparent: for any paper
    /// model on either reference machine, a planner allowed to abort
    /// losing candidates mid-window chooses exactly the plan a planner
    /// running every window to completion chooses. (An aborted candidate
    /// had already lost by `metric_better`'s rules — the abort only
    /// saves the wall-clock of confirming it.) Exercised through the
    /// builder flag so the test does not mutate process-global env
    /// state; `MPRESS_BOUND_ABORT=0` is the same switch.
    #[test]
    fn bound_abort_does_not_change_the_chosen_plan(
        model_idx in 0usize..10,
        machine_pick in 0usize..2,
    ) {
        use mpress_bench::jobs::{bert_job, gpt_job};
        use mpress_model::zoo;
        let machine = if machine_pick == 1 {
            mpress_hw::Machine::dgx2()
        } else {
            mpress_hw::Machine::dgx1()
        };
        let job = if model_idx < 5 {
            bert_job(zoo::bert_variants()[model_idx].clone(), machine.clone())
        } else {
            gpt_job(zoo::gpt_variants()[model_idx - 5].clone(), machine.clone())
        };
        let run = |abort: bool| -> String {
            let (plan, _) = mpress::Mpress::builder()
                .job(job.clone())
                .bound_abort(abort)
                .build()
                .plan()
                .unwrap();
            format!(
                "{:?}|{:?}|{}|{:?}",
                plan.device_map,
                plan.instrumentation,
                plan.refinement_rounds,
                plan.refine_candidates,
            )
        };
        prop_assert_eq!(run(true), run(false));
    }
}

//! The title claim — *democratizing* billion-scale training — on a server
//! that has no DGX-class interconnect at all.
//!
//! Every alternative leans on hardware a commodity server lacks:
//! Megatron-style tensor parallelism needs NVLink-priced all-reduces in
//! every layer, and the ZeRO family needs fast host/NVMe staging. MPress
//! built its D2D swap *for* NVLink — but its planner portfolio degrades
//! gracefully: with zero reachable donors it falls back to recomputation
//! and host swap, and keeps pipeline throughput.
//!
//! ```text
//! cargo run --release --example commodity_server
//! ```

use mpress::{Mpress, OptimizationSet};
use mpress_baselines::{MegatronBaseline, ZeroBaseline, ZeroVariant};
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = Machine::commodity();
    let model = zoo::gpt_10_3b();
    println!("{} on {}\n", model, machine.name());

    // No GPU pair is NVLink-reachable: D2D swap has no donors here.
    let topo = machine.topology();
    let links = topo
        .devices()
        .map(|d| topo.neighbors(d).len())
        .sum::<usize>();
    println!("NVLink links on this server: {links}");

    // Intra-operator parallelism: memory is balanced, but every layer's
    // all-reduces now cross PCIe.
    let megatron = MegatronBaseline::new(machine.clone(), model.clone()).report();
    println!(
        "Megatron TP-8     : {:6.1} TFLOPS ({:.1} GiB/GPU, {} moved per microbatch)",
        megatron.tflops,
        megatron.gpu_bytes.as_gib_f64(),
        megatron.comm_bytes_per_microbatch,
    );

    // The ZeRO family: collectives and staging fall back to PCIe/NVMe.
    for variant in [ZeroVariant::Offload, ZeroVariant::Infinity] {
        let r = ZeroBaseline::new(machine.clone(), model.clone(), variant).report();
        println!("{:<18}: {:6.1} TFLOPS", variant.to_string(), r.tflops);
    }

    // Inter-operator parallelism: the unmodified pipeline OOMs...
    let job = PipelineJob::builder()
        .model(model)
        .machine(machine)
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(16)
        .build()?;
    let plain = Mpress::builder()
        .job(job.clone())
        .optimizations(OptimizationSet::none())
        .build()
        .train_unmodified()?;
    println!(
        "plain DAPPLE      : {}",
        if plain.succeeded() { "fits" } else { "OOM" }
    );

    // ...and MPress repairs it with the techniques that never needed
    // NVLink, at full pipeline throughput.
    let report = Mpress::builder().job(job).build().train()?;
    assert!(report.succeeded());
    println!(
        "MPress            : {:6.1} TFLOPS (d2d {}, host {}, recompute {:.2}s)",
        report.tflops, report.sim.d2d_traffic, report.sim.host_traffic, report.sim.recompute_time,
    );
    Ok(())
}

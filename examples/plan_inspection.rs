//! Inspect the memory-saving plan MPress generates for a pressured job:
//! which tensors go to which technique, what each saves, and where the
//! D2D stripes land (paper Table IV, per-tensor view).
//!
//! ```text
//! cargo run --release --example plan_inspection
//! ```

use mpress::Mpress;
use mpress_compaction::{MemoryDirective, Technique};
use mpress_hw::{Bytes, Machine};
use mpress_model::{zoo, PrecisionPolicy};
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let job = PipelineJob::builder()
        .model(zoo::bert_1_67b())
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::PipeDream)
        .microbatch_size(12)
        .microbatches(16)
        .precision(PrecisionPolicy::full())
        .build()?;

    let mpress = Mpress::builder().job(job).build();
    let (plan, lowered) = mpress.plan()?;

    println!("device map: {}", plan.device_map);
    println!(
        "refinement rounds: {}, directives: {}",
        plan.refinement_rounds,
        plan.instrumentation.len()
    );

    let savings = plan.savings(&lowered);
    let total: f64 = savings.values().map(|b| b.as_f64()).sum();
    println!("\nper-technique savings (paper Table IV):");
    for tech in [
        Technique::Recompute,
        Technique::GpuCpuSwap,
        Technique::D2dSwap,
    ] {
        let bytes = savings.get(&tech).copied().unwrap_or(Bytes::ZERO);
        println!(
            "  {tech:<14} {:>10}  ({:.1}%)",
            bytes.to_string(),
            if total > 0.0 {
                100.0 * bytes.as_f64() / total
            } else {
                0.0
            }
        );
    }

    println!("\nsample directives:");
    let mut shown = 0;
    for (tensor_id, directive) in plan.instrumentation.iter() {
        if shown >= 8 {
            break;
        }
        let tensor = lowered.graph.tensor(tensor_id);
        match directive {
            MemoryDirective::SwapD2d(stripe) => {
                println!("  {tensor} -> D2D {stripe}");
                shown += 1;
            }
            other if shown < 4 => {
                println!("  {tensor} -> {other}");
                shown += 1;
            }
            _ => {}
        }
    }

    let report = mpress.simulate(&plan, &lowered)?;
    println!(
        "\nsimulated: ok={} {:.1} TFLOPS, D2D traffic {}, host traffic {}",
        report.succeeded(),
        report.tflops,
        report.sim.d2d_traffic,
        report.sim.host_traffic
    );
    Ok(())
}

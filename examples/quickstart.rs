//! Quickstart: break the memory wall for a GPT-10.3B job on a DGX-1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpress::{Mpress, OptimizationSet};
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A training job the way the paper runs GPT: DAPPLE scheduling,
    // microbatch 2, mixed precision, one stage per GPU.
    let job = PipelineJob::builder()
        .model(zoo::gpt_10_3b())
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(16)
        .build()?;

    let demands = job.memory_demands();
    println!(
        "GPT-10.3B demands {:.0} GiB total, {:.1} GiB on the hottest GPU \
         (capacity: 32 GiB per V100)",
        demands.total().as_gib_f64(),
        demands.max_stage().as_gib_f64()
    );

    // Unmodified DAPPLE runs out of memory...
    let plain = Mpress::builder()
        .job(job.clone())
        .optimizations(OptimizationSet::none())
        .build()
        .train_unmodified()?;
    println!(
        "unmodified DAPPLE: {}",
        match plain.sim.oom {
            None => "fits".to_owned(),
            Some(oom) => oom.to_string(),
        }
    );

    // ...MPress combines D2D swap, GPU-CPU swap and recomputation to fit.
    let report = Mpress::builder().job(job).build().train()?;
    assert!(report.succeeded(), "MPress must sustain GPT-10.3B");
    println!(
        "MPress: {:.1} aggregate TFLOPS, {:.1} samples/s, peak {:.1} GiB/GPU",
        report.tflops,
        report.throughput,
        report.max_device_peak().as_gib_f64()
    );
    println!(
        "plan: {} directives, device map {}",
        report.plan.instrumentation.len(),
        report.plan.device_map
    );
    Ok(())
}

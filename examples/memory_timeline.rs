//! Render the per-device memory evolution of an MPress-planned run — the
//! curves sketched under the paper's Fig. 1, at paper scale.
//!
//! ```text
//! cargo run --release --example memory_timeline
//! ```

use mpress::Mpress;
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_pipeline::{PipelineJob, ScheduleKind};
use mpress_sim::{viz, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let job = PipelineJob::builder()
        .model(zoo::gpt_10_3b())
        .machine(Machine::dgx1())
        .schedule(ScheduleKind::Dapple)
        .microbatch_size(2)
        .microbatches(16)
        .build()?;
    let mpress = Mpress::builder().job(job).build();
    let (plan, lowered) = mpress.plan()?;

    let report = Simulator::new(
        mpress.machine(),
        &lowered.graph,
        &plan.instrumentation,
        plan.device_map.clone(),
    )
    .with_config(SimConfig::default().track_timeline(true))
    .run()?;

    println!(
        "GPT-10.3B under MPress on {} — memory per device (full block = 31.5 GiB usable):\n",
        mpress.machine().name()
    );
    print!(
        "{}",
        viz::memory_chart(&report, mpress.machine().gpu().usable_memory(), 90)
    );
    println!("\nexecution lanes:");
    let stages: Vec<usize> = (0..lowered.graph.n_stages())
        .map(|dev| {
            plan.device_map
                .stage_of(mpress_hw::DeviceId(dev))
                .expect("bijective map")
        })
        .collect();
    print!("{}", viz::gantt(&report, &lowered.graph, &stages, 90));
    Ok(())
}

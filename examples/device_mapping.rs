//! Inspect MPress's device-mapping search (paper §III-C, Fig. 6) on the
//! asymmetric DGX-1 topology.
//!
//! ```text
//! cargo run --release --example device_mapping
//! ```

use mpress::MappingSearch;
use mpress_hw::{Bytes, DeviceId, Machine};
use mpress_sim::DeviceMap;
use std::time::Instant;

fn main() {
    let machine = Machine::dgx1();
    let search = MappingSearch::new(&machine);

    // A typical inter-operator imbalance: the first three stages overflow,
    // the last four donate.
    let overflow: Vec<Bytes> = [12u64, 6, 2, 0, 0, 0, 0, 0]
        .iter()
        .map(|&g| Bytes::gib(g))
        .collect();
    let spare: Vec<Bytes> = [0u64, 0, 0, 2, 6, 8, 10, 14]
        .iter()
        .map(|&g| Bytes::gib(g))
        .collect();

    // Example output timing only; the library itself stays clock-free.
    #[allow(clippy::disallowed_methods)]
    let t0 = Instant::now();
    let (map, assignment, score) = search.search(&overflow, &spare);
    let elapsed = t0.elapsed();

    println!("topology: {} (asymmetric NVLink)", machine.name());
    println!("searched all 8! stage permutations in {elapsed:?}");
    println!("best map: {map}  (score {score:.2})");
    #[allow(clippy::needless_range_loop)]
    for stage in 0..8 {
        if overflow[stage].is_zero() {
            continue;
        }
        println!(
            "stage {stage} (overflow {}): donors {:?}, {} lanes, {} budget",
            overflow[stage],
            assignment.per_stage[stage]
                .iter()
                .map(|&(d, _, _)| d)
                .collect::<Vec<DeviceId>>(),
            assignment.lanes_of(stage),
            assignment.budget_of(stage),
        );
    }

    // Compare against the naive identity mapping.
    let id = DeviceMap::identity(8);
    let id_assignment = search.assign_spare(&id, &overflow, &spare);
    let id_score = search.score_assignment(&id, &overflow, &id_assignment);
    println!(
        "identity map score {id_score:.2} -> search improves D2D drain by {:.0}%",
        100.0 * (score / id_score - 1.0)
    );
}

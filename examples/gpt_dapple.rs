//! The paper's Fig. 8 scenario: GPT under DAPPLE against the ZeRO family
//! on both server generations.
//!
//! ```text
//! cargo run --release --example gpt_dapple
//! ```

use mpress_bench::experiments;
use mpress_hw::Machine;

fn main() {
    println!("{}", experiments::fig8(Machine::dgx1()));
    println!("{}", experiments::fig8(Machine::dgx2()));
}

//! Compare the three pipeline schedules' memory/throughput trade-off on
//! the same model: PipeDream (async, weight stashing), DAPPLE (sync 1F1B)
//! and GPipe (all-forward-then-all-backward).
//!
//! ```text
//! cargo run --release --example schedule_comparison
//! ```

use mpress::{Mpress, OptimizationSet};
use mpress_hw::Machine;
use mpress_model::zoo;
use mpress_pipeline::{PipelineJob, ScheduleKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("GPT-5.3B on DGX-1, microbatch 2, window 16 microbatches\n");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>10}",
        "schedule", "total GiB", "hottest GiB", "plain", "mpress"
    );
    for kind in [
        ScheduleKind::PipeDream,
        ScheduleKind::Dapple,
        ScheduleKind::GPipe,
    ] {
        let job = PipelineJob::builder()
            .model(zoo::gpt_5_3b())
            .machine(Machine::dgx1())
            .schedule(kind)
            .microbatch_size(2)
            .microbatches(16)
            .build()?;
        let demands = job.memory_demands();
        let plain = Mpress::builder()
            .job(job.clone())
            .optimizations(OptimizationSet::none())
            .build()
            .train_unmodified()?;
        let mpress = Mpress::builder().job(job).build().train()?;
        let cell = |ok: bool, v: f64| {
            if ok {
                format!("{v:.1}")
            } else {
                "OOM".to_owned()
            }
        };
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>14} {:>10}",
            kind.to_string(),
            demands.total().as_gib_f64(),
            demands.max_stage().as_gib_f64(),
            cell(plain.succeeded(), plain.tflops),
            cell(mpress.succeeded(), mpress.tflops),
        );
    }
    println!(
        "\nGPipe holds every microbatch's activations (no early backward), so its\n\
         hottest stage demands far more than the 1F1B schedules — exactly why\n\
         MPress's compaction matters most there."
    );
    Ok(())
}

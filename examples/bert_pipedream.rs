//! The paper's Fig. 7 scenario: scaling Bert under PipeDream on a DGX-1
//! across five system configurations, watching who OOMs where.
//!
//! ```text
//! cargo run --release --example bert_pipedream
//! ```

use mpress_bench::experiments;

fn main() {
    println!("{}", experiments::fig7());
    println!("(Red-cross OOM marks in the paper appear here as \"OOM\".)");
}
